package core_test

import (
	"bytes"
	"strings"
	"testing"

	"parblast/internal/blast"
	"parblast/internal/core"
	"parblast/internal/engine"
	"parblast/internal/formatdb"
	"parblast/internal/metrics"
	"parblast/internal/mpi"
	"parblast/internal/mpiblast"
	"parblast/internal/seq"
	"parblast/internal/simtime"
	"parblast/internal/vfs"
	"parblast/internal/workload"
)

// fixture builds a formatted database plus query set on a fresh cluster.
type fixture struct {
	job     *engine.Job
	db      *formatdb.DB
	queries []*seq.Sequence
}

// makeFixture samples queries from the same synthetic DB that newCluster
// formats (identical seed/config), so queries are guaranteed homologs.
func makeFixture(t *testing.T, queryBytes int) *fixture {
	t.Helper()
	seqs, err := workload.SynthesizeDB(workload.DBConfig{
		Kind: seq.Protein, NumSeqs: 60, MeanLen: 150, Seed: 101,
	})
	if err != nil {
		t.Fatal(err)
	}
	queries, err := workload.SampleQueries(seqs, workload.QueryConfig{
		TargetBytes: queryBytes, MeanLen: 100, MutationRate: 0.05, Seed: 202,
	})
	if err != nil {
		t.Fatal(err)
	}
	return &fixture{
		queries: queries,
		job: &engine.Job{
			DBBase:     "nr",
			Queries:    queries,
			Options:    blast.DefaultProteinOptions(),
			OutputPath: "results.out",
		},
	}
}

// newCluster formats the fixture's DB onto a fresh cluster's shared FS.
func (fx *fixture) newCluster(t *testing.T, n int, shared vfs.Profile, local *vfs.Profile, volMax int64) []*vfs.Node {
	t.Helper()
	nodes, err := vfs.Cluster(n, shared, local)
	if err != nil {
		t.Fatal(err)
	}
	seqs, err := workload.SynthesizeDB(workload.DBConfig{
		Kind: seq.Protein, NumSeqs: 60, MeanLen: 150, Seed: 101,
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := formatdb.Format(nodes[0].Shared, "nr", seqs, formatdb.Config{
		Title: "synthetic nr", Kind: seq.Protein, VolumeMaxResidues: volMax,
	})
	if err != nil {
		t.Fatal(err)
	}
	fx.db = db
	return nodes
}

func testCost() simtime.CostModel { return simtime.DefaultCostModel() }

func localDisk() *vfs.Profile {
	p := vfs.LocalDisk()
	return &p
}

// runAllThree executes the sequential oracle, the baseline, and pioBLAST on
// identical inputs and returns the three output files.
func runAllThree(t *testing.T, fx *fixture, nprocs, fragments int, shared vfs.Profile, local *vfs.Profile, opts core.Options) (seqOut, mpiOut, pioOut []byte, mpiRes, pioRes engine.RunResult) {
	t.Helper()

	// Sequential oracle.
	seqNodes := fx.newCluster(t, 1, vfs.RAMDisk(), nil, 0)
	seqJob := *fx.job
	if err := engine.RunSequential(seqNodes[0].Shared, &seqJob); err != nil {
		t.Fatal(err)
	}
	seqOut, err := seqNodes[0].Shared.ReadFile(fx.job.OutputPath)
	if err != nil {
		t.Fatal(err)
	}

	// Baseline.
	mpiNodes := fx.newCluster(t, nprocs, shared, local, 0)
	nFrags := fragments
	if nFrags == 0 {
		nFrags = nprocs - 1
	}
	if _, err := mpiblast.PrepareFragments(mpiNodes[0].Shared, "nr", nFrags); err != nil {
		t.Fatal(err)
	}
	mpiJob := *fx.job
	mpiJob.Fragments = fragments
	mpiRes, err = mpiblast.Run(mpiNodes, nprocs, testCost(), &mpiJob)
	if err != nil {
		t.Fatal(err)
	}
	mpiOut, err = mpiNodes[0].Shared.ReadFile(fx.job.OutputPath)
	if err != nil {
		t.Fatal(err)
	}

	// pioBLAST.
	pioNodes := fx.newCluster(t, nprocs, shared, local, 0)
	pioJob := *fx.job
	pioJob.Fragments = fragments
	pioRes, err = core.Run(pioNodes, nprocs, testCost(), &pioJob, opts)
	if err != nil {
		t.Fatal(err)
	}
	pioOut, err = pioNodes[0].Shared.ReadFile(fx.job.OutputPath)
	if err != nil {
		t.Fatal(err)
	}
	return seqOut, mpiOut, pioOut, mpiRes, pioRes
}

func TestEnginesProduceIdenticalOutput(t *testing.T) {
	fx := makeFixture(t, 400)
	seqOut, mpiOut, pioOut, _, _ := runAllThree(t, fx, 4, 0, vfs.XFSLike(), localDisk(), core.Options{})
	if len(seqOut) == 0 {
		t.Fatal("sequential output empty")
	}
	if !bytes.Equal(seqOut, mpiOut) {
		t.Fatalf("mpiBLAST output differs from sequential (len %d vs %d)\nfirst divergence: %d",
			len(mpiOut), len(seqOut), firstDiff(seqOut, mpiOut))
	}
	if !bytes.Equal(seqOut, pioOut) {
		t.Fatalf("pioBLAST output differs from sequential (len %d vs %d)\nfirst divergence: %d",
			len(pioOut), len(seqOut), firstDiff(seqOut, pioOut))
	}
	if !strings.Contains(string(seqOut), "Sequences producing significant alignments") {
		t.Fatal("output has no hit summaries — workload produced no hits")
	}
}

func firstDiff(a, b []byte) int {
	n := len(a)
	if len(b) < n {
		n = len(b)
	}
	for i := 0; i < n; i++ {
		if a[i] != b[i] {
			return i
		}
	}
	return n
}

func TestEquivalenceAcrossProcessCounts(t *testing.T) {
	fx := makeFixture(t, 300)
	var ref []byte
	for _, n := range []int{2, 3, 6} {
		seqOut, mpiOut, pioOut, _, _ := runAllThree(t, fx, n, 0, vfs.XFSLike(), localDisk(), core.Options{})
		if ref == nil {
			ref = seqOut
		}
		if !bytes.Equal(ref, mpiOut) || !bytes.Equal(ref, pioOut) {
			t.Fatalf("n=%d: outputs differ from reference", n)
		}
	}
}

func TestEquivalenceAcrossFragmentCounts(t *testing.T) {
	fx := makeFixture(t, 300)
	seqOut, mpiOut, pioOut, _, _ := runAllThree(t, fx, 4, 9, vfs.XFSLike(), localDisk(), core.Options{})
	if !bytes.Equal(seqOut, mpiOut) {
		t.Fatal("mpiBLAST with 9 fragments differs")
	}
	if !bytes.Equal(seqOut, pioOut) {
		t.Fatal("pioBLAST with 9 virtual fragments differs")
	}
}

func TestEarlyPrunePreservesOutput(t *testing.T) {
	fx := makeFixture(t, 300)
	seqOut, _, pioOut, _, _ := runAllThree(t, fx, 5, 0, vfs.XFSLike(), nil, core.Options{EarlyPrune: true})
	if !bytes.Equal(seqOut, pioOut) {
		t.Fatal("early-prune changed the output")
	}
}

func TestIndependentOutputPreservesBytes(t *testing.T) {
	fx := makeFixture(t, 300)
	seqOut, _, pioOut, _, _ := runAllThree(t, fx, 4, 0, vfs.XFSLike(), nil, core.Options{IndependentOutput: true})
	if !bytes.Equal(seqOut, pioOut) {
		t.Fatal("independent-output mode changed the bytes")
	}
}

func TestNoLocalDiskUsesSharedScratch(t *testing.T) {
	// The Altix case: no node-local storage; the baseline copies fragments
	// to shared scratch instead and everything still works.
	fx := makeFixture(t, 300)
	seqOut, mpiOut, pioOut, mpiRes, _ := runAllThree(t, fx, 4, 0, vfs.XFSLike(), nil, core.Options{})
	if !bytes.Equal(seqOut, mpiOut) || !bytes.Equal(seqOut, pioOut) {
		t.Fatal("diskless platform broke equivalence")
	}
	if mpiRes.Phase.Copy <= 0 {
		t.Fatal("baseline should still pay a copy phase on shared scratch")
	}
}

func TestPioBLASTFasterAndPhaseShapes(t *testing.T) {
	fx := makeFixture(t, 500)
	_, _, _, mpiRes, pioRes := runAllThree(t, fx, 6, 0, vfs.XFSLike(), localDisk(), core.Options{})
	if pioRes.Wall >= mpiRes.Wall {
		t.Fatalf("pioBLAST (%.2fs) not faster than mpiBLAST (%.2fs)", pioRes.Wall, mpiRes.Wall)
	}
	// Phase structure: baseline has a copy phase and no input phase;
	// pioBLAST is the reverse.
	if mpiRes.Phase.Copy <= 0 {
		t.Fatalf("baseline copy phase missing: %+v", mpiRes.Phase)
	}
	if mpiRes.Phase.Input != 0 {
		t.Fatalf("baseline should have no input phase: %+v", mpiRes.Phase)
	}
	if pioRes.Phase.Copy != 0 {
		t.Fatalf("pioBLAST should have no copy phase: %+v", pioRes.Phase)
	}
	if pioRes.Phase.Input <= 0 {
		t.Fatalf("pioBLAST input phase missing: %+v", pioRes.Phase)
	}
	// Output phase: the paper's headline — pioBLAST's is far smaller.
	if pioRes.Phase.Output >= mpiRes.Phase.Output {
		t.Fatalf("pioBLAST output phase (%.2f) not below baseline (%.2f)",
			pioRes.Phase.Output, mpiRes.Phase.Output)
	}
}

func TestRunDeterminism(t *testing.T) {
	fx := makeFixture(t, 300)
	run := func() (engine.RunResult, []byte) {
		nodes := fx.newCluster(t, 4, vfs.XFSLike(), localDisk(), 0)
		job := *fx.job
		res, err := core.Run(nodes, 4, testCost(), &job, core.Options{})
		if err != nil {
			t.Fatal(err)
		}
		out, _ := nodes[0].Shared.ReadFile(job.OutputPath)
		return res, out
	}
	r1, o1 := run()
	r2, o2 := run()
	if r1.Wall != r2.Wall {
		t.Fatalf("wall time nondeterministic: %g vs %g", r1.Wall, r2.Wall)
	}
	if !bytes.Equal(o1, o2) {
		t.Fatal("output nondeterministic")
	}
}

func TestMultiVolumeDatabase(t *testing.T) {
	// Format with small volumes so the global DB spans several files; the
	// engines must read across volume boundaries correctly.
	fx := makeFixture(t, 300)

	seqNodes, err := vfs.Cluster(1, vfs.RAMDisk(), nil)
	if err != nil {
		t.Fatal(err)
	}
	seqs, _ := workload.SynthesizeDB(workload.DBConfig{Kind: seq.Protein, NumSeqs: 60, MeanLen: 150, Seed: 101})
	if _, err := formatdb.Format(seqNodes[0].Shared, "nr", seqs, formatdb.Config{
		Title: "synthetic nr", Kind: seq.Protein, VolumeMaxResidues: workload.TotalResidues(seqs) / 4,
	}); err != nil {
		t.Fatal(err)
	}
	seqJob := *fx.job
	if err := engine.RunSequential(seqNodes[0].Shared, &seqJob); err != nil {
		t.Fatal(err)
	}
	want, _ := seqNodes[0].Shared.ReadFile(fx.job.OutputPath)

	nodes, err := vfs.Cluster(4, vfs.XFSLike(), nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := formatdb.Format(nodes[0].Shared, "nr", seqs, formatdb.Config{
		Title: "synthetic nr", Kind: seq.Protein, VolumeMaxResidues: workload.TotalResidues(seqs) / 4,
	}); err != nil {
		t.Fatal(err)
	}
	job := *fx.job
	if _, err := core.Run(nodes, 4, testCost(), &job, core.Options{}); err != nil {
		t.Fatal(err)
	}
	got, _ := nodes[0].Shared.ReadFile(job.OutputPath)
	if !bytes.Equal(want, got) {
		t.Fatalf("multi-volume pioBLAST output differs (%d vs %d bytes)", len(got), len(want))
	}
}

func TestRunValidation(t *testing.T) {
	fx := makeFixture(t, 300)
	nodes := fx.newCluster(t, 2, vfs.XFSLike(), nil, 0)
	if _, err := core.Run(nodes, 1, testCost(), fx.job, core.Options{}); err == nil {
		t.Fatal("1-rank pioBLAST accepted")
	}
	bad := *fx.job
	bad.DBBase = "missing"
	if _, err := core.Run(nodes, 2, testCost(), &bad, core.Options{}); err == nil {
		t.Fatal("missing database accepted by pioBLAST")
	}
	if _, err := mpiblast.Run(nodes, 2, testCost(), &bad); err == nil {
		t.Fatal("missing database accepted by baseline")
	}
	// Baseline without prepared fragments must fail with a clear error.
	if _, err := mpiblast.Run(nodes, 2, testCost(), fx.job); err == nil ||
		!strings.Contains(err.Error(), "fragment") {
		t.Fatalf("missing fragments not diagnosed: %v", err)
	}
}

func TestDynamicAssignmentPreservesOutput(t *testing.T) {
	fx := makeFixture(t, 300)
	seqOut, _, pioOut, _, _ := runAllThree(t, fx, 5, 12, vfs.XFSLike(), nil,
		core.Options{DynamicAssignment: true})
	if !bytes.Equal(seqOut, pioOut) {
		t.Fatal("dynamic assignment changed the output")
	}
}

func TestQueryBatchingPreservesOutput(t *testing.T) {
	fx := makeFixture(t, 300)
	for _, batch := range []int{2, 3, 100} {
		seqOut, _, pioOut, _, _ := runAllThree(t, fx, 4, 0, vfs.XFSLike(), nil,
			core.Options{QueryBatch: batch})
		if !bytes.Equal(seqOut, pioOut) {
			t.Fatalf("query batch %d changed the output", batch)
		}
	}
}

func TestCombinedOptionsPreserveOutput(t *testing.T) {
	fx := makeFixture(t, 300)
	seqOut, _, pioOut, _, _ := runAllThree(t, fx, 5, 15, vfs.XFSLike(), nil,
		core.Options{DynamicAssignment: true, EarlyPrune: true, QueryBatch: 4})
	if !bytes.Equal(seqOut, pioOut) {
		t.Fatal("combined extension options changed the output")
	}
}

func TestHeterogeneousDynamicBeatsStatic(t *testing.T) {
	// On a cluster where a quarter of the workers run at 1/3 speed,
	// greedy fragment assignment with fine granularity must beat static
	// natural partitioning — the §5 load-balancing claim.
	// Needs a search-dominated workload so that compute skew is what
	// matters; the shared fixture is too small for that.
	seqs, err := workload.SynthesizeDB(workload.DBConfig{
		Kind: seq.Protein, NumSeqs: 300, MeanLen: 250, Seed: 31, FamilySize: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	hq, err := workload.SampleQueries(seqs, workload.QueryConfig{
		TargetBytes: 4000, MeanLen: 300, MutationRate: 0.05, Seed: 32,
	})
	if err != nil {
		t.Fatal(err)
	}
	speeds := make([]float64, 9)
	for i := range speeds {
		speeds[i] = 1
	}
	speeds[7], speeds[8] = 3, 3 // two slow nodes

	run := func(opts core.Options, fragments int) engine.RunResult {
		nodes, err := vfs.Cluster(9, vfs.XFSLike(), nil)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := formatdb.Format(nodes[0].Shared, "nr", seqs, formatdb.Config{
			Title: "hetero nr", Kind: seq.Protein,
		}); err != nil {
			t.Fatal(err)
		}
		job := &engine.Job{
			DBBase: "nr", Queries: hq, Options: blast.DefaultProteinOptions(),
			OutputPath: "out", Fragments: fragments,
		}
		res, err := core.RunConfig(nodes, 9, mpiCfg(speeds), job, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	static := run(core.Options{}, 0)
	dynamic := run(core.Options{DynamicAssignment: true}, 32)
	if dynamic.Wall >= static.Wall {
		t.Fatalf("dynamic assignment (%.3fs) not faster than static (%.3fs) on a heterogeneous cluster",
			dynamic.Wall, static.Wall)
	}
}

func TestQueryBatchingReducesOutputTime(t *testing.T) {
	// Batching amortizes per-query collective costs; with many queries
	// the batched run's output phase must not be larger.
	fx := makeFixture(t, 500)
	run := func(batch int) engine.RunResult {
		nodes := fx.newCluster(t, 6, vfs.XFSLike(), nil, 0)
		job := *fx.job
		res, err := core.Run(nodes, 6, testCost(), &job, core.Options{QueryBatch: batch})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	perQuery := run(1)
	batched := run(8)
	if batched.Phase.Output > perQuery.Phase.Output*1.05 {
		t.Fatalf("batched output phase (%.3fs) worse than per-query (%.3fs)",
			batched.Phase.Output, perQuery.Phase.Output)
	}
}

func mpiCfg(speeds []float64) mpi.Config {
	return mpi.Config{Cost: testCost(), Speeds: speeds}
}

func TestTabularOutputAcrossEngines(t *testing.T) {
	fx := makeFixture(t, 300)
	fx.job.Options.OutFormat = blast.FormatTabular
	seqOut, mpiOut, pioOut, _, _ := runAllThree(t, fx, 4, 0, vfs.XFSLike(), nil, core.Options{})
	if !bytes.Equal(seqOut, mpiOut) || !bytes.Equal(seqOut, pioOut) {
		t.Fatal("tabular outputs differ across engines")
	}
	text := string(seqOut)
	if !strings.Contains(text, "# Fields: query id") {
		t.Fatalf("tabular header missing:\n%.200s", text)
	}
	for _, line := range strings.Split(text, "\n") {
		if line == "" || strings.HasPrefix(line, "#") {
			continue
		}
		if got := strings.Count(line, "\t"); got != 11 {
			t.Fatalf("data line has %d tabs: %q", got, line)
		}
	}
}

func TestFilteredSearchAcrossEngines(t *testing.T) {
	fx := makeFixture(t, 300)
	fx.job.Options.FilterLowComplexity = true
	seqOut, mpiOut, pioOut, _, _ := runAllThree(t, fx, 4, 0, vfs.XFSLike(), nil, core.Options{})
	if !bytes.Equal(seqOut, mpiOut) || !bytes.Equal(seqOut, pioOut) {
		t.Fatal("filtered outputs differ across engines")
	}
}

func TestAdaptiveBatchingPreservesOutput(t *testing.T) {
	fx := makeFixture(t, 500)
	for _, budget := range []int64{1, 4096, 1 << 20} {
		seqOut, _, pioOut, _, _ := runAllThree(t, fx, 5, 0, vfs.XFSLike(), nil,
			core.Options{MemoryBudgetBytes: budget})
		if !bytes.Equal(seqOut, pioOut) {
			t.Fatalf("budget %d changed the output", budget)
		}
	}
}

func TestAdaptiveBoundsProperties(t *testing.T) {
	volumes := []int64{100, 900, 50, 50, 50, 2000, 10}
	bounds := core.AdaptiveBoundsForTest(volumes, 1000)
	// Boundaries must start at 0, end at len, be strictly increasing.
	if bounds[0] != 0 || bounds[len(bounds)-1] != len(volumes) {
		t.Fatalf("bounds endpoints wrong: %v", bounds)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not increasing: %v", bounds)
		}
	}
	// Each multi-query batch fits the budget; single-query batches may
	// exceed it (a query's output is indivisible).
	for i := 0; i+1 < len(bounds); i++ {
		var sum int64
		for q := bounds[i]; q < bounds[i+1]; q++ {
			sum += volumes[q]
		}
		if bounds[i+1]-bounds[i] > 1 && sum > 1000 {
			t.Fatalf("batch [%d,%d) volume %d exceeds budget: %v", bounds[i], bounds[i+1], sum, bounds)
		}
	}
	// A huge budget yields one batch; a tiny budget yields one per query.
	if got := core.AdaptiveBoundsForTest(volumes, 1<<40); len(got) != 2 {
		t.Fatalf("huge budget should give one batch: %v", got)
	}
	if got := core.AdaptiveBoundsForTest(volumes, 1); len(got) != len(volumes)+1 {
		t.Fatalf("tiny budget should give per-query batches: %v", got)
	}
}

// --- Read path: collective input reads and input/search overlap ---

func TestCollectiveReadPreservesOutput(t *testing.T) {
	fx := makeFixture(t, 300)
	for _, prof := range []vfs.Profile{vfs.XFSLike(), vfs.NFSLike()} {
		seqOut, _, pioOut, _, _ := runAllThree(t, fx, 4, 9, prof, nil,
			core.Options{CollectiveRead: true})
		if !bytes.Equal(seqOut, pioOut) {
			t.Fatalf("collective reads changed the output on %s (first diff %d)",
				prof.Name, firstDiff(seqOut, pioOut))
		}
	}
}

func TestPrefetchPreservesOutput(t *testing.T) {
	fx := makeFixture(t, 300)
	for _, depth := range []int{1, 2, 4} {
		seqOut, _, pioOut, _, _ := runAllThree(t, fx, 4, 9, vfs.XFSLike(), nil,
			core.Options{PrefetchDepth: depth})
		if !bytes.Equal(seqOut, pioOut) {
			t.Fatalf("prefetch depth %d changed the output", depth)
		}
	}
}

// TestReadPathCombosPreserveOutput sweeps every combination of collective
// reads, prefetch, and dynamic assignment (dynamic falls back to
// independent reads, with the prefetch pipelining the greedy protocol).
func TestReadPathCombosPreserveOutput(t *testing.T) {
	fx := makeFixture(t, 300)
	for _, dynamic := range []bool{false, true} {
		for _, collective := range []bool{false, true} {
			for _, depth := range []int{0, 1, 2} {
				opts := core.Options{
					DynamicAssignment: dynamic,
					CollectiveRead:    collective,
					PrefetchDepth:     depth,
				}
				seqOut, _, pioOut, _, _ := runAllThree(t, fx, 5, 12, vfs.XFSLike(), nil, opts)
				if !bytes.Equal(seqOut, pioOut) {
					t.Fatalf("opts %+v changed the output (first diff %d)",
						opts, firstDiff(seqOut, pioOut))
				}
			}
		}
	}
}

// TestCollectiveReadReducesInputTime is the read-side §3 claim on the
// strided platform: many workers each reading many small extents from the
// one NFS channel pay per-operation latency, while the collective
// aggregates them into a few large sieved reads.
func TestCollectiveReadReducesInputTime(t *testing.T) {
	fx := makeFixture(t, 400)
	run := func(opts core.Options) engine.RunResult {
		nodes := fx.newCluster(t, 5, vfs.NFSLike(), nil, 0)
		job := *fx.job
		job.Fragments = 16
		res, err := core.Run(nodes, 5, testCost(), &job, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	indep := run(core.Options{})
	coll := run(core.Options{CollectiveRead: true})
	if coll.Phase.Input >= indep.Phase.Input {
		t.Fatalf("collective input phase %.4fs not below independent %.4fs",
			coll.Phase.Input, indep.Phase.Input)
	}
}

// TestPrefetchReducesWall: with the input stage pipelined against search,
// partition reads after the first hide behind compute, shrinking makespan.
// Needs spare storage parallelism (XFS's channel pool) — on the one-channel
// NFS profile with several workers, cross-worker contention already keeps
// the channel saturated and overlap cannot shorten the critical path.
func TestPrefetchReducesWall(t *testing.T) {
	fx := makeFixture(t, 1200)
	run := func(n int, prof vfs.Profile, opts core.Options) engine.RunResult {
		nodes := fx.newCluster(t, n, prof, nil, 0)
		job := *fx.job
		job.Fragments = 12
		res, err := core.Run(nodes, n, testCost(), &job, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	syncRes := run(4, vfs.XFSLike(), core.Options{})
	async := run(4, vfs.XFSLike(), core.Options{PrefetchDepth: 2})
	if async.Wall >= syncRes.Wall {
		t.Fatalf("prefetch wall %.4fs not below synchronous %.4fs", async.Wall, syncRes.Wall)
	}
	if async.Phase.Input >= syncRes.Phase.Input {
		t.Fatalf("prefetch input phase %.4fs not below synchronous %.4fs (nothing hidden)",
			async.Phase.Input, syncRes.Phase.Input)
	}
	dynSync := run(4, vfs.XFSLike(), core.Options{DynamicAssignment: true})
	dynAsync := run(4, vfs.XFSLike(), core.Options{DynamicAssignment: true, PrefetchDepth: 1})
	if dynAsync.Wall >= dynSync.Wall {
		t.Fatalf("dynamic prefetch wall %.4fs not below synchronous %.4fs",
			dynAsync.Wall, dynSync.Wall)
	}
	// Uncontended NFS (one worker): every read after the first hides
	// entirely behind the previous partition's search.
	nfsSync := run(2, vfs.NFSLike(), core.Options{})
	nfsAsync := run(2, vfs.NFSLike(), core.Options{PrefetchDepth: 2})
	if nfsAsync.Wall >= nfsSync.Wall {
		t.Fatalf("NFS prefetch wall %.4fs not below synchronous %.4fs", nfsAsync.Wall, nfsSync.Wall)
	}
}

// TestSearchPhaseExcludesQueueing is the regression test for the dynamic
// loop's phase misattribution: waiting at the master's assignment queue was
// billed to the search phase. Search must be pure compute — invariant under
// a 100× network latency change.
func TestSearchPhaseExcludesQueueing(t *testing.T) {
	fx := makeFixture(t, 400)
	run := func(lat float64) engine.RunResult {
		nodes := fx.newCluster(t, 4, vfs.XFSLike(), nil, 0)
		job := *fx.job
		job.Fragments = 9
		cost := testCost()
		cost.NetLatency = lat
		res, err := core.Run(nodes, 4, cost, &job, core.Options{DynamicAssignment: true})
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	fast := run(40e-6)
	slow := run(4e-3)
	if fast.Phase.Search != slow.Phase.Search {
		t.Fatalf("search phase depends on net latency (%.6fs vs %.6fs): rendezvous wait is misattributed",
			fast.Phase.Search, slow.Phase.Search)
	}
	// The extra latency is real — it must show up in the wall clock (as
	// idle/queueing), just not in the search bucket.
	if slow.Wall <= fast.Wall {
		t.Fatalf("slower network should raise wall time (%.6fs vs %.6fs)", slow.Wall, fast.Wall)
	}
}

// TestFileOpenCacheBoundsOpens: satellite for the triple-open bug — each
// worker now opens every database file once, regardless of how many
// partitions it reads.
func TestFileOpenCacheBoundsOpens(t *testing.T) {
	fx := makeFixture(t, 300)
	nodes := fx.newCluster(t, 4, vfs.XFSLike(), nil, 0)
	reg := metrics.NewRegistry()
	job := *fx.job
	job.Fragments = 18
	cfg := mpi.Config{Cost: testCost(), Metrics: reg}
	if _, err := core.RunConfig(nodes, 4, cfg, &job, core.Options{}); err != nil {
		t.Fatal(err)
	}
	var opens int64
	for _, c := range reg.Snapshot().Counters {
		if c.Name == "mpiio.opens" {
			opens += c.Value
		}
	}
	// Per rank: 3 database files per volume (1 volume here) + the shared
	// output file. Without the cache this would be 3 opens per partition:
	// 18 partitions / 3 workers × 3 + 1 = 19 per worker.
	maxOpens := int64(4 * (3 + 1))
	if opens == 0 || opens > maxOpens {
		t.Fatalf("mpiio.opens = %d, want 1..%d (file handles not cached?)", opens, maxOpens)
	}
}

// TestBatchBoundsEdges covers the degenerate batching inputs: no queries,
// non-positive batch size, zero/negative budget, one over-budget query,
// and all-zero volumes. Bounds must always start at 0, end at n, and be
// strictly increasing.
func TestBatchBoundsEdges(t *testing.T) {
	checkBounds := func(name string, bounds []int, n int) {
		t.Helper()
		if bounds[0] != 0 || bounds[len(bounds)-1] != n {
			t.Fatalf("%s: endpoints wrong: %v (n=%d)", name, bounds, n)
		}
		for i := 1; i < len(bounds); i++ {
			if bounds[i] <= bounds[i-1] {
				t.Fatalf("%s: bounds not strictly increasing: %v", name, bounds)
			}
		}
	}
	if got := core.FixedBoundsForTest(0, 5); len(got) != 1 || got[0] != 0 {
		t.Fatalf("fixedBounds(0) = %v, want [0]", got)
	}
	if got := core.FixedBoundsForTest(-3, 5); len(got) != 1 || got[0] != 0 {
		t.Fatalf("fixedBounds(-3) = %v, want [0]", got)
	}
	checkBounds("b=0 clamps to 1", core.FixedBoundsForTest(4, 0), 4)
	if got := core.FixedBoundsForTest(4, 0); len(got) != 5 {
		t.Fatalf("fixedBounds(4, 0) = %v, want per-query batches", got)
	}
	checkBounds("b>n", core.FixedBoundsForTest(3, 100), 3)

	if got := core.AdaptiveBoundsForTest(nil, 100); len(got) != 1 || got[0] != 0 {
		t.Fatalf("adaptiveBounds(no queries) = %v, want [0]", got)
	}
	vols := []int64{10, 10, 10}
	for _, budget := range []int64{0, -5} {
		got := core.AdaptiveBoundsForTest(vols, budget)
		checkBounds("non-positive budget", got, len(vols))
		if len(got) != len(vols)+1 {
			t.Fatalf("budget %d should give per-query batches: %v", budget, got)
		}
	}
	// One query alone over budget still forms its own (single-query) batch.
	over := []int64{5, 1000, 5}
	checkBounds("over-budget query", core.AdaptiveBoundsForTest(over, 100), len(over))
	// All-zero volumes never exceed any budget: one batch.
	zeros := []int64{0, 0, 0, 0}
	got := core.AdaptiveBoundsForTest(zeros, 0)
	checkBounds("all-zero volumes", got, len(zeros))
}

// TestExchangeThresholdBoundary: with exactly k global hits the threshold
// must be the k-th best score, not the no-prune sentinel (the off-by-one
// this PR fixes); with k-1 hits it must fall back to the sentinel.
func TestExchangeThresholdBoundary(t *testing.T) {
	const k = 4
	scores := [][]int64{{90, 50}, {70, 60}} // exactly k across 2 ranks
	got := make([]int64, 2)
	if _, err := mpi.Run(2, testCost(), func(r *mpi.Rank) error {
		got[r.ID()] = core.ExchangeThresholdForTest(r, scores[r.ID()], k)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got[0] != got[1] {
		t.Fatalf("threshold differs across ranks: %d vs %d", got[0], got[1])
	}
	if got[0] != 50 {
		t.Fatalf("threshold with exactly k hits = %d, want 50 (k-th best)", got[0])
	}
	short := [][]int64{{90}, {70, 60}} // k-1 hits
	if _, err := mpi.Run(2, testCost(), func(r *mpi.Rank) error {
		got[r.ID()] = core.ExchangeThresholdForTest(r, short[r.ID()], k)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	if got[0] != -1<<62 {
		t.Fatalf("threshold with k-1 hits = %d, want the no-prune sentinel", got[0])
	}
}

// TestReadPathSurvivesTransientIOFaults: deterministic transient storage
// errors (failed attempts + backoff) delay reads but must never change the
// output bytes, in any read-path mode.
func TestReadPathSurvivesTransientIOFaults(t *testing.T) {
	fx := makeFixture(t, 300)

	seqNodes := fx.newCluster(t, 1, vfs.RAMDisk(), nil, 0)
	seqJob := *fx.job
	if err := engine.RunSequential(seqNodes[0].Shared, &seqJob); err != nil {
		t.Fatal(err)
	}
	oracle, err := seqNodes[0].Shared.ReadFile(fx.job.OutputPath)
	if err != nil {
		t.Fatal(err)
	}

	for _, opts := range []core.Options{
		{CollectiveRead: true},
		{PrefetchDepth: 2},
		{DynamicAssignment: true, PrefetchDepth: 1},
	} {
		nodes := fx.newCluster(t, 4, vfs.NFSLike(), nil, 0)
		if err := nodes[0].Shared.InjectFaults(vfs.FaultPlan{
			FirstOp: 2, Every: 3, Failures: 2, Backoff: 1e-3,
		}); err != nil {
			t.Fatal(err)
		}
		job := *fx.job
		job.Fragments = 9
		if _, err := core.Run(nodes, 4, testCost(), &job, opts); err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		out, err := nodes[0].Shared.ReadFile(job.OutputPath)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(out, oracle) {
			t.Fatalf("opts %+v: transient I/O faults changed the output (first diff %d)",
				opts, firstDiff(out, oracle))
		}
	}
}
