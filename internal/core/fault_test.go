package core_test

import (
	"bytes"
	"strings"
	"testing"

	"parblast/internal/core"
	"parblast/internal/engine"
	"parblast/internal/mpi"
	"parblast/internal/mpiblast"
	"parblast/internal/vfs"
)

// crashSpec runs one engine with the given fault schedule on a fresh
// cluster and returns the run result and output bytes.
func crashSpec(t *testing.T, fx *fixture, eng string, nprocs int, faults []mpi.Fault) (engine.RunResult, []byte) {
	t.Helper()
	nodes := fx.newCluster(t, nprocs, vfs.XFSLike(), localDisk(), 0)
	job := *fx.job
	cfg := mpi.Config{Cost: testCost(), Faults: faults}
	var res engine.RunResult
	var err error
	switch eng {
	case "mpi":
		if _, err := mpiblast.PrepareFragments(nodes[0].Shared, "nr", nprocs-1); err != nil {
			t.Fatal(err)
		}
		res, err = mpiblast.RunOpts(nodes, nprocs, cfg, &job, mpiblast.Options{})
	case "pio":
		res, err = core.RunConfig(nodes, nprocs, cfg, &job, core.Options{FaultTolerant: true})
	}
	if err != nil {
		t.Fatalf("%s crashed run failed: %v", eng, err)
	}
	out, err := nodes[0].Shared.ReadFile(fx.job.OutputPath)
	if err != nil {
		t.Fatal(err)
	}
	return res, out
}

// TestCrashRecoveryByteIdentical: a single worker crash mid-search must
// leave both engines' output byte-identical to the sequential oracle, and
// the recovery must be deterministic (two crashed runs agree exactly).
func TestCrashRecoveryByteIdentical(t *testing.T) {
	const nprocs = 4
	fx := makeFixture(t, 2000)

	seqNodes := fx.newCluster(t, 1, vfs.RAMDisk(), nil, 0)
	seqJob := *fx.job
	if err := engine.RunSequential(seqNodes[0].Shared, &seqJob); err != nil {
		t.Fatal(err)
	}
	oracle, err := seqNodes[0].Shared.ReadFile(fx.job.OutputPath)
	if err != nil {
		t.Fatal(err)
	}

	for _, eng := range []string{"mpi", "pio"} {
		free, freeOut := crashSpec(t, fx, eng, nprocs, nil)
		if !bytes.Equal(freeOut, oracle) {
			t.Fatalf("%s fault-free output differs from oracle at byte %d",
				eng, firstDiff(freeOut, oracle))
		}
		// Crash the last worker mid-search (before the output phase, which
		// recovery deliberately does not cover).
		at := 0.5 * (free.Wall - free.Phase.Output)
		faults := []mpi.Fault{{Rank: nprocs - 1, At: at, Kind: mpi.FaultCrash}}
		crashed, out1 := crashSpec(t, fx, eng, nprocs, faults)
		if !bytes.Equal(out1, oracle) {
			t.Errorf("%s output after crash differs from oracle at byte %d",
				eng, firstDiff(out1, oracle))
		}
		if crashed.Wall <= free.Wall {
			t.Errorf("%s crashed wall %.3f not above fault-free %.3f (no recovery cost?)",
				eng, crashed.Wall, free.Wall)
		}
		crashed2, out2 := crashSpec(t, fx, eng, nprocs, faults)
		if !bytes.Equal(out1, out2) || crashed2.Wall != crashed.Wall {
			t.Errorf("%s recovery is nondeterministic (wall %.6f vs %.6f)",
				eng, crashed.Wall, crashed2.Wall)
		}
	}
}

// TestCrashRankZeroRejected: the master cannot be a crash victim — both
// engines must refuse the schedule up front instead of hanging.
func TestCrashRankZeroRejected(t *testing.T) {
	fx := makeFixture(t, 600)
	faults := []mpi.Fault{{Rank: 0, At: 0.1, Kind: mpi.FaultCrash}}
	cfg := mpi.Config{Cost: testCost(), Faults: faults}

	nodes := fx.newCluster(t, 3, vfs.XFSLike(), nil, 0)
	job := *fx.job
	if _, err := core.RunConfig(nodes, 3, cfg, &job, core.Options{}); err == nil ||
		!strings.Contains(err.Error(), "rank 0") {
		t.Errorf("core accepted a master crash: %v", err)
	}

	nodes2 := fx.newCluster(t, 3, vfs.XFSLike(), localDisk(), 0)
	if _, err := mpiblast.PrepareFragments(nodes2[0].Shared, "nr", 2); err != nil {
		t.Fatal(err)
	}
	job2 := *fx.job
	if _, err := mpiblast.RunOpts(nodes2, 3, cfg, &job2, mpiblast.Options{}); err == nil ||
		!strings.Contains(err.Error(), "rank 0") {
		t.Errorf("mpiblast accepted a master crash: %v", err)
	}
}

// TestCrashDuringOutputUnrecoverable: recovery covers the search phase
// only; a worker dying in the output window must surface a clean error
// that says so, not a hang or corrupt output.
func TestCrashDuringOutputUnrecoverable(t *testing.T) {
	const nprocs = 4
	fx := makeFixture(t, 2000)
	free, _ := crashSpec(t, fx, "mpi", nprocs, nil)

	// Fire just inside the output window: the victim has reported results
	// and is now serving the master's fetch protocol.
	at := free.Wall - 0.5*free.Phase.Output
	nodes := fx.newCluster(t, nprocs, vfs.XFSLike(), localDisk(), 0)
	if _, err := mpiblast.PrepareFragments(nodes[0].Shared, "nr", nprocs-1); err != nil {
		t.Fatal(err)
	}
	job := *fx.job
	cfg := mpi.Config{Cost: testCost(), Faults: []mpi.Fault{{Rank: nprocs - 1, At: at, Kind: mpi.FaultCrash}}}
	_, err := mpiblast.RunOpts(nodes, nprocs, cfg, &job, mpiblast.Options{})
	if err == nil {
		t.Skip("crash window missed the output phase on this cost model")
	}
	if !strings.Contains(err.Error(), "output phase") {
		t.Errorf("output-phase crash produced %v, want an error naming the output phase", err)
	}
}

// TestCrashRecoveryWithReadPathModes: a mid-search worker crash must still
// yield oracle-identical output when the input stage uses collective reads
// or the prefetch pipeline (recovery re-reads reclaimed partitions with
// independent reads, since the crashed peers a collective needs are gone).
func TestCrashRecoveryWithReadPathModes(t *testing.T) {
	const nprocs = 4
	fx := makeFixture(t, 2000)

	seqNodes := fx.newCluster(t, 1, vfs.RAMDisk(), nil, 0)
	seqJob := *fx.job
	if err := engine.RunSequential(seqNodes[0].Shared, &seqJob); err != nil {
		t.Fatal(err)
	}
	oracle, err := seqNodes[0].Shared.ReadFile(fx.job.OutputPath)
	if err != nil {
		t.Fatal(err)
	}

	runPio := func(opts core.Options, faults []mpi.Fault) (engine.RunResult, []byte) {
		t.Helper()
		nodes := fx.newCluster(t, nprocs, vfs.XFSLike(), localDisk(), 0)
		job := *fx.job
		job.Fragments = 9
		cfg := mpi.Config{Cost: testCost(), Faults: faults}
		res, err := core.RunConfig(nodes, nprocs, cfg, &job, opts)
		if err != nil {
			t.Fatalf("opts %+v: %v", opts, err)
		}
		out, err := nodes[0].Shared.ReadFile(fx.job.OutputPath)
		if err != nil {
			t.Fatal(err)
		}
		return res, out
	}

	for _, opts := range []core.Options{
		{FaultTolerant: true, CollectiveRead: true},
		{FaultTolerant: true, PrefetchDepth: 2},
		{FaultTolerant: true, DynamicAssignment: true, PrefetchDepth: 1},
	} {
		free, freeOut := runPio(opts, nil)
		if !bytes.Equal(freeOut, oracle) {
			t.Fatalf("opts %+v fault-free output differs at byte %d",
				opts, firstDiff(freeOut, oracle))
		}
		at := 0.5 * (free.Wall - free.Phase.Output)
		faults := []mpi.Fault{{Rank: nprocs - 1, At: at, Kind: mpi.FaultCrash}}
		_, out1 := runPio(opts, faults)
		if !bytes.Equal(out1, oracle) {
			t.Errorf("opts %+v output after crash differs at byte %d",
				opts, firstDiff(out1, oracle))
		}
		_, out2 := runPio(opts, faults)
		if !bytes.Equal(out1, out2) {
			t.Errorf("opts %+v recovery nondeterministic", opts)
		}
	}
}
