package core_test

import (
	"bytes"
	"reflect"
	"testing"

	"parblast/internal/core"
	"parblast/internal/mpi"
	"parblast/internal/mpiblast"
	"parblast/internal/report"
	"parblast/internal/trace"
	"parblast/internal/vfs"
)

// tracedConfig wires a collector's span observer and flow adapter into an
// mpi config, the way the parblast CLI's -trace-flows does.
func tracedConfig(col *trace.Collector) mpi.Config {
	return mpi.Config{
		Cost:     testCost(),
		Observer: col.Observer,
		OnFlow: func(f mpi.FlowEvent) {
			col.RecordFlow(trace.Flow{
				Kind: f.Kind, Op: f.Op, ID: f.ID, Batch: f.Batch,
				Src: f.Src, Dst: f.Dst, Bytes: f.Bytes,
				SendAt: f.SendAt, RecvAt: f.RecvAt,
			})
		},
	}
}

// TestTracingZeroVirtualTimeCost is the observability contract: enabling
// span and flow tracing must not move a single virtual clock — output
// bytes, wall time, per-rank finish times, and per-query latencies are all
// byte-identical with tracing on and off.
func TestTracingZeroVirtualTimeCost(t *testing.T) {
	fx := makeFixture(t, 2000)
	opts := core.Options{QueryBatch: 2}

	plain, plainOut := runPio(t, fx, 4, mpi.Config{Cost: testCost()}, opts)
	col := trace.NewCollector()
	traced, tracedOut := runPio(t, fx, 4, tracedConfig(col), opts)

	if !bytes.Equal(plainOut, tracedOut) {
		t.Fatal("tracing changed output bytes")
	}
	if plain.Wall != traced.Wall {
		t.Fatalf("tracing changed wall: %g vs %g", plain.Wall, traced.Wall)
	}
	for rank := range plain.Clocks {
		if a, b := plain.Clocks[rank].Now(), traced.Clocks[rank].Now(); a != b {
			t.Fatalf("rank %d finish moved: %g vs %g", rank, a, b)
		}
	}
	if !reflect.DeepEqual(plain.QueryLatencies, traced.QueryLatencies) {
		t.Fatalf("tracing changed query latencies:\n%v\n%v",
			plain.QueryLatencies, traced.QueryLatencies)
	}
	if len(col.Flows()) == 0 {
		t.Fatal("traced run recorded no flows")
	}
}

// TestQueryLatenciesDeterministic: repeated identical runs and runs with
// different SearchThreads settings yield bit-identical per-query latencies
// (master-clock accounting is independent of host parallelism).
func TestQueryLatenciesDeterministic(t *testing.T) {
	fx := makeFixture(t, 2000)
	opts := core.Options{QueryBatch: 2}

	first, _ := runPio(t, fx, 4, mpi.Config{Cost: testCost()}, opts)
	second, _ := runPio(t, fx, 4, mpi.Config{Cost: testCost()}, opts)
	if !reflect.DeepEqual(first.QueryLatencies, second.QueryLatencies) {
		t.Fatalf("latencies differ across identical runs:\n%v\n%v",
			first.QueryLatencies, second.QueryLatencies)
	}

	threaded := makeFixture(t, 2000)
	threaded.job.Options.SearchThreads = 4
	third, _ := runPio(t, threaded, 4, mpi.Config{Cost: testCost()}, opts)
	if !reflect.DeepEqual(first.QueryLatencies, third.QueryLatencies) {
		t.Fatalf("latencies differ across SearchThreads:\n%v\n%v",
			first.QueryLatencies, third.QueryLatencies)
	}

	if len(first.QueryLatencies) != len(fx.queries) {
		t.Fatalf("%d latencies for %d queries", len(first.QueryLatencies), len(fx.queries))
	}
	for q, lat := range first.QueryLatencies {
		if lat <= 0 {
			t.Fatalf("query %d latency %g not positive", q, lat)
		}
	}
}

// TestMpiblastQueryLatencies: the baseline engine records latencies too, in
// both merge protocols, and the serialized flat merge makes them
// non-decreasing in query order (each query's output waits on all earlier
// ones).
func TestMpiblastQueryLatencies(t *testing.T) {
	for _, tree := range []bool{false, true} {
		fx := makeFixture(t, 2000)
		nodes := fx.newCluster(t, 4, vfs.NFSLike(), localDisk(), 0)
		if _, err := mpiblast.PrepareFragments(nodes[0].Shared, "nr", 3); err != nil {
			t.Fatal(err)
		}
		job := *fx.job
		res, err := mpiblast.RunOpts(nodes, 4, mpi.Config{Cost: testCost()}, &job,
			mpiblast.Options{TreeMerge: tree})
		if err != nil {
			t.Fatal(err)
		}
		if len(res.QueryLatencies) != len(fx.queries) {
			t.Fatalf("tree=%v: %d latencies for %d queries",
				tree, len(res.QueryLatencies), len(fx.queries))
		}
		for q := 1; q < len(res.QueryLatencies); q++ {
			if res.QueryLatencies[q] < res.QueryLatencies[q-1] {
				t.Fatalf("tree=%v: serialized output latencies decreased at query %d: %v",
					tree, q, res.QueryLatencies)
			}
		}
	}
}

// TestExactPathAgreesWithHeuristic: on a straggler-free run the wait-for
// walk must anchor exactly where the per-rank heuristic attribution does —
// same finish rank, same finish time — and tile it completely with blame.
func TestExactPathAgreesWithHeuristic(t *testing.T) {
	fx := makeFixture(t, 2000)
	col := trace.NewCollector()
	res, _ := runPio(t, fx, 4, tracedConfig(col), core.Options{QueryBatch: 2})

	doc := report.Build(report.RunInfo{Engine: "pio"}, res, nil)
	if doc.CriticalPath == nil {
		t.Fatal("heuristic critical path missing")
	}
	exact := report.ExactCriticalPath(col)
	if exact == nil {
		t.Fatal("exact critical path missing")
	}
	if exact.FinishRank != doc.CriticalPath.Rank {
		t.Fatalf("finish rank disagrees: exact %d vs heuristic %d",
			exact.FinishRank, doc.CriticalPath.Rank)
	}
	if exact.Finish != doc.CriticalPath.Finish {
		t.Fatalf("finish time disagrees: exact %g vs heuristic %g",
			exact.Finish, doc.CriticalPath.Finish)
	}
	if total := exact.Blame.Total(); total <= 0 ||
		total > exact.Finish-exact.Unexplained+1e-9 ||
		total < exact.Finish-exact.Unexplained-1e-9 {
		t.Fatalf("blame %g does not tile finish %g (unexplained %g)",
			total, exact.Finish, exact.Unexplained)
	}
	if exact.DroppedFlows != 0 {
		t.Fatalf("run produced %d malformed flows", exact.DroppedFlows)
	}
}
