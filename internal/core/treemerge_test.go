package core_test

import (
	"bytes"
	"strings"
	"testing"

	"parblast/internal/core"
	"parblast/internal/engine"
	"parblast/internal/metrics"
	"parblast/internal/mpi"
	"parblast/internal/vfs"
)

// oracleOutput runs the sequential reference on a fresh RAM-disk cluster.
func oracleOutput(t *testing.T, fx *fixture) []byte {
	t.Helper()
	seqNodes := fx.newCluster(t, 1, vfs.RAMDisk(), nil, 0)
	seqJob := *fx.job
	if err := engine.RunSequential(seqNodes[0].Shared, &seqJob); err != nil {
		t.Fatal(err)
	}
	out, err := seqNodes[0].Shared.ReadFile(fx.job.OutputPath)
	if err != nil {
		t.Fatal(err)
	}
	return out
}

// runPio runs pioBLAST on a fresh cluster with the given options/config
// and returns the run result plus output bytes.
func runPio(t *testing.T, fx *fixture, nprocs int, cfg mpi.Config, opts core.Options) (engine.RunResult, []byte) {
	t.Helper()
	nodes := fx.newCluster(t, nprocs, vfs.XFSLike(), localDisk(), 0)
	job := *fx.job
	res, err := core.RunConfig(nodes, nprocs, cfg, &job, opts)
	if err != nil {
		t.Fatalf("pio run failed: %v", err)
	}
	out, err := nodes[0].Shared.ReadFile(fx.job.OutputPath)
	if err != nil {
		t.Fatal(err)
	}
	return res, out
}

// TestTreeMergeByteIdentical: the hierarchical merge must reproduce the
// sequential oracle byte for byte at every fan-out, alone and combined
// with the collective-read and prefetch input paths.
func TestTreeMergeByteIdentical(t *testing.T) {
	const nprocs = 6
	fx := makeFixture(t, 1200)
	oracle := oracleOutput(t, fx)
	variants := []struct {
		name string
		opts core.Options
	}{
		{"plain", core.Options{}},
		{"collective-read", core.Options{CollectiveRead: true}},
		{"prefetch", core.Options{PrefetchDepth: 2}},
	}
	for _, v := range variants {
		for _, fanout := range []int{2, 4, 8} {
			opts := v.opts
			opts.TreeMerge = true
			opts.MergeFanout = fanout
			_, out := runPio(t, fx, nprocs, mpi.Config{Cost: testCost()}, opts)
			if !bytes.Equal(out, oracle) {
				t.Errorf("%s fanout=%d: output differs from oracle at byte %d",
					v.name, fanout, firstDiff(out, oracle))
			}
		}
	}
}

// TestTreeMergeRecordsTreeMetrics: the run must expose the tree-shape
// gauges and per-level edge volume the mergescale experiment attributes.
func TestTreeMergeRecordsTreeMetrics(t *testing.T) {
	fx := makeFixture(t, 800)
	reg := metrics.NewRegistry()
	cfg := mpi.Config{Cost: testCost(), Metrics: reg}
	_, _ = runPio(t, fx, 6, cfg, core.Options{TreeMerge: true, MergeFanout: 2})
	snap := reg.Snapshot()
	if snap.CounterTotal("mpi.collective.treereduce") == 0 {
		t.Error("no treereduce collectives recorded")
	}
	if snap.CounterTotal("mpi.tree.level01.bytes") == 0 {
		t.Error("no level-1 tree edge volume recorded")
	}
	if snap.GaugeTotal("mpi.tree.fanout") != 2 {
		t.Errorf("fanout gauge = %g, want 2", snap.GaugeTotal("mpi.tree.fanout"))
	}
}

// TestTreeMergeCrashMidSearchByteIdentical: a worker crash during the
// search phase must recover to oracle-identical output with the tree
// merge enabled (the merge then runs over the survivor membership), and
// the recovery must be deterministic.
func TestTreeMergeCrashMidSearchByteIdentical(t *testing.T) {
	const nprocs = 5
	fx := makeFixture(t, 1600)
	oracle := oracleOutput(t, fx)
	opts := core.Options{TreeMerge: true, MergeFanout: 2, FaultTolerant: true}
	free, freeOut := runPio(t, fx, nprocs, mpi.Config{Cost: testCost()}, opts)
	if !bytes.Equal(freeOut, oracle) {
		t.Fatalf("fault-free tree-merge output differs from oracle at byte %d", firstDiff(freeOut, oracle))
	}
	at := 0.5 * (free.Wall - free.Phase.Output)
	faults := []mpi.Fault{{Rank: nprocs - 1, At: at, Kind: mpi.FaultCrash}}
	crashed, out1 := runPio(t, fx, nprocs, mpi.Config{Cost: testCost(), Faults: faults}, opts)
	if !bytes.Equal(out1, oracle) {
		t.Errorf("crashed tree-merge output differs from oracle at byte %d", firstDiff(out1, oracle))
	}
	crashed2, out2 := runPio(t, fx, nprocs, mpi.Config{Cost: testCost(), Faults: faults}, opts)
	if !bytes.Equal(out1, out2) || crashed2.Wall != crashed.Wall {
		t.Errorf("tree-merge recovery nondeterministic (wall %.6f vs %.6f)", crashed.Wall, crashed2.Wall)
	}
}

// TestTreeMergeCrashDuringMergeCleanError: a worker dying inside the
// merge/output window must surface a clean error naming the failure —
// recovery covers the search phase only — rather than hanging or writing
// corrupt output silently.
func TestTreeMergeCrashDuringMergeCleanError(t *testing.T) {
	const nprocs = 5
	fx := makeFixture(t, 1600)
	opts := core.Options{TreeMerge: true, MergeFanout: 2, FaultTolerant: true}
	free, _ := runPio(t, fx, nprocs, mpi.Config{Cost: testCost()}, opts)
	at := free.Wall - 0.9*free.Phase.Output
	nodes := fx.newCluster(t, nprocs, vfs.XFSLike(), localDisk(), 0)
	job := *fx.job
	cfg := mpi.Config{Cost: testCost(), Faults: []mpi.Fault{{Rank: nprocs - 1, At: at, Kind: mpi.FaultCrash}}}
	_, err := core.RunConfig(nodes, nprocs, cfg, &job, opts)
	if err == nil {
		t.Fatal("crash inside the merge window reported no error")
	}
	if !strings.Contains(err.Error(), "crash") {
		t.Errorf("unexpected error for merge-window crash: %v", err)
	}
}

// TestTreeMergeRejectsBadFanout: fan-out 1 cannot form a tree.
func TestTreeMergeRejectsBadFanout(t *testing.T) {
	fx := makeFixture(t, 400)
	nodes := fx.newCluster(t, 3, vfs.XFSLike(), localDisk(), 0)
	job := *fx.job
	_, err := core.RunConfig(nodes, 3, mpi.Config{Cost: testCost()}, &job, core.Options{TreeMerge: true, MergeFanout: 1})
	if err == nil || !strings.Contains(err.Error(), "fan-out") {
		t.Errorf("fan-out 1 accepted: %v", err)
	}
}
