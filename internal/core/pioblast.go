// Package core implements pioBLAST — the paper's contribution: parallel
// BLAST with efficient data access.
//
// Compared to the mpiblast baseline it changes exactly the four things the
// paper's §3 describes:
//
//  1. Direct global database access with DYNAMIC (virtual) partitioning:
//     no physical fragments, no copy stage. The master computes
//     (start offset, end offset) ranges from the global index files and
//     distributes them; each worker reads its contiguous ranges of the
//     shared sequence/header/index files in parallel with MPI-IO-style
//     independent reads, straight into memory buffers that the (slightly
//     modified) search kernel consumes.
//  2. Result caching: workers keep every candidate hit — alignment and
//     subject data — in memory as it is discovered, and render the
//     formatted output block of each candidate locally, so the block's
//     bytes and, crucially, its SIZE are known without master involvement.
//  3. Metadata-only merging: workers submit only identifications, scores,
//     and output sizes. The master merges, selects the global winners, and
//     tells each worker WHICH of its hits qualified — the alignment data
//     never makes a round trip through the master.
//  4. Parallel output: because every record's size is known, the master
//     computes each record's byte range in the single shared output file;
//     workers install file views over those ranges and write their cached
//     blocks with collective (two-phase) writes, while the master
//     contributes the header, summary, and statistics trailer through its
//     own view.
//
// The engine runs in two phases, like the baseline: every worker first
// searches all queries against its virtual fragments, then the ranks run
// the per-query merge/output protocol. The §5 future-work extensions are
// implemented behind Options:
//
//   - EarlyPrune: early score communication — a global score threshold is
//     agreed before rendering, so hopeless candidates are dropped at the
//     workers;
//   - DynamicAssignment: virtual fragments are assigned greedily at run
//     time instead of statically, the load-balancing scheme §5 sketches
//     for heterogeneous nodes or skewed searches;
//   - QueryBatch: several queries share one collective write, the
//     batching §5 proposes for large result volumes;
//   - IndependentOutput: the collective write is replaced by per-rank
//     strided writes (ablation for §3.3).
package core

import (
	"errors"
	"fmt"
	"sort"

	"parblast/internal/blast"
	"parblast/internal/engine"
	"parblast/internal/formatdb"
	"parblast/internal/mpi"
	"parblast/internal/mpiio"
	"parblast/internal/seq"
	"parblast/internal/simtime"
	"parblast/internal/vfs"
)

// Message tags (distinct from the baseline's, below the mpiio space).
const (
	tagResults    = 11
	tagSelect     = 12
	tagPartReq    = 13
	tagPartAssign = 14
	tagReady      = 15 // worker → master: search phase finished (FT sync)
	tagGo         = 16 // master → worker: proceed to output, or re-search parts
)

// Options selects pioBLAST variants.
type Options struct {
	// EarlyPrune enables §5's "early score communication": before
	// rendering a query's blocks, ranks exchange their top scores,
	// compute the global MaxTargetSeqs-th best score, and skip hits that
	// cannot reach the global output. Output is unchanged; work shrinks.
	EarlyPrune bool
	// IndependentOutput replaces the collective write with per-rank
	// independent strided writes — the ablation showing why §3.3 uses
	// collective I/O.
	IndependentOutput bool
	// DynamicAssignment assigns virtual fragments to workers greedily at
	// run time (workers ask the master for the next unsearched fragment)
	// instead of statically. With Fragments > workers this implements the
	// §5 load-balancing scheme for heterogeneous nodes.
	DynamicAssignment bool
	// QueryBatch groups this many queries into one collective write
	// (0 or 1 = per-query output, the default). §5's query batching.
	QueryBatch int
	// CollectiveRead replaces the workers' independent input reads with
	// collective two-phase reads: per database volume, all ranks (master
	// included, with empty views) read the index-array, header, and
	// sequence ranges as three MPI_File_read_all-style operations, so
	// aggregators turn the strided per-partition requests into a few
	// large sieved sequential reads. Static assignment only: with
	// DynamicAssignment the partition→worker map is not known up front,
	// so the engine falls back to independent reads.
	CollectiveRead bool
	// PrefetchDepth > 0 overlaps input with search: a worker starts the
	// asynchronous reads of up to this many upcoming partitions before
	// searching the current one, paying max(io, compute) instead of
	// their sum. With DynamicAssignment the pipeline is one partition
	// deep (the greedy protocol assigns one at a time).
	PrefetchDepth int
	// MemoryBudgetBytes, when positive, enables ADAPTIVE batching (§5's
	// "adjust to the amount of available memory"): after the search phase
	// the ranks exchange per-query cached-output volumes and every rank
	// derives the same batch boundaries, packing as many queries per
	// collective write as fit the budget. Overrides QueryBatch.
	MemoryBudgetBytes int64
	// NodeSpeeds optionally declares per-rank compute-speed factors
	// (1 = baseline, 2 = twice as slow), modelling heterogeneous nodes.
	NodeSpeeds []float64
	// FaultTolerant enables the worker-failure recovery protocol: a
	// ready/go rendezvous after the search phase in which the master
	// detects dead workers and re-issues their VIRTUAL partitions (offset
	// ranges — no data movement) to survivors. Enabled automatically when
	// the MPI config schedules faults; can be forced on to measure the
	// protocol's fault-free overhead.
	FaultTolerant bool
	// FaultTimeout is the failure-detection polling interval in virtual
	// seconds (0 = 250 × NetLatency). Detection is timeout-paced but never
	// wrong: a timeout only triggers a ground-truth liveness check.
	FaultTimeout float64
	// TreeMerge replaces the flat worker→master metadata streams with the
	// hierarchical group merge: workers pre-merge their batch metadata up
	// a k-ary reduction tree (the same top-k selection the master runs, so
	// the result is byte-identical) and the master broadcasts the output
	// layout back down the tree. The flat path remains the ablation
	// baseline.
	TreeMerge bool
	// MergeFanout is the reduction-tree fan-out for TreeMerge
	// (0 = mpi.DefaultTreeFanout).
	MergeFanout int
	// IOHints carries MPI-IO hints applied to every shared-file handle
	// the run opens (database volumes and the output file): aggregator
	// count, collective buffer size, sieve gap, and read strategy. The
	// zero value reproduces the layer's built-in heuristics.
	IOHints mpiio.Hints
	// IOTuner, when non-nil, attaches the shared I/O auto-tuner to every
	// input-file handle: collective reads consult it for the strategy/gap
	// decision and feed their measured virtual cost back. The tuner is an
	// in-process object shared by all ranks (like the file system itself),
	// so it rides alongside the job rather than through the broadcast.
	IOTuner *mpiio.Tuner
}

// wireExtent ships one virtual-fragment extent to a worker: the ordinal
// range plus every byte range needed to read it from the shared files.
type wireExtent struct {
	VolBase     string
	From, To    int
	OIDFrom     int
	HdrOff      int64
	HdrLen      int64
	SeqOff      int64
	SeqLen      int64
	HdrArrayPos int64 // file position in .pin of hdrOffsets[From]
	SeqArrayPos int64 // file position in .pin of seqOffsets[From]
}

// jobMeta is the broadcast that seeds every worker. The shell is cold-path
// gob; the query payload inside is pre-encoded with the compact codec
// (engine.EncodeWireQueries), since it dominates the broadcast bytes.
type jobMeta struct {
	Queries  []byte // engine.EncodeWireQueries payload
	Title    string
	Kind     seq.Kind
	NumSeqs  int
	TotalLen int64
	// Parts lists every virtual fragment's extents. With static
	// assignment, part p belongs to worker (p mod workers)+1; with
	// dynamic assignment, parts are handed out greedily at run time.
	Parts       [][]wireExtent
	OutputPath  string
	EarlyPrune  bool
	Independent bool
	Dynamic     bool
	// Collective selects collective two-phase input reads (static
	// assignment only); Prefetch is the input/search overlap depth.
	Collective bool
	Prefetch   int
	QueryBatch int
	MemBudget  int64
	// FT enables the ready/go failure-recovery rendezvous after the search
	// phase; FTTimeout is the master's detection polling interval.
	FT        bool
	FTTimeout float64
	// Tree selects the hierarchical metadata merge over the k-ary
	// reduction tree with the given fan-out.
	Tree       bool
	TreeFanout int
	// IOHints is applied to every shared-file handle a rank opens.
	IOHints mpiio.Hints
	// Serve marks a streaming run: Queries is empty, and each batch's
	// queries arrive in a per-batch broadcast instead (see serve.go).
	Serve bool
}

// batchMetas is one worker's result metadata for a batch of queries.
type batchMetas struct {
	FirstQuery int
	PerQuery   []engine.QueryMeta
}

func (b *batchMetas) encode() []byte {
	var w engine.Writer
	w.Int(int64(b.FirstQuery))
	w.Uint(uint64(len(b.PerQuery)))
	for _, qm := range b.PerQuery {
		engine.EncodeQueryMeta(&w, qm)
	}
	return w.Bytes()
}

func decodeBatchMetas(data []byte) (batchMetas, error) {
	r := engine.NewReader(data)
	b := batchMetas{FirstQuery: int(r.Int())}
	n := int(r.Uint())
	for i := 0; i < n && r.Err() == nil; i++ {
		b.PerQuery = append(b.PerQuery, engine.DecodeQueryMeta(r))
	}
	return b, r.Err()
}

// selection tells a worker where its chosen blocks land in the output file.
type selection struct {
	Queries []int
	OIDs    []int
	Offsets []int64
	Lengths []int64
}

func (s *selection) encode() []byte {
	var w engine.Writer
	w.Uint(uint64(len(s.OIDs)))
	for i := range s.OIDs {
		w.Int(int64(s.Queries[i]))
		w.Int(int64(s.OIDs[i]))
		w.Int(s.Offsets[i])
		w.Int(s.Lengths[i])
	}
	return w.Bytes()
}

// encodeGo packs a master→worker go message: done flag plus the part
// indices (if any) the worker must re-search on behalf of dead peers. The
// final (done) message also carries the surviving worker list, so every
// rank derives the identical reduction-tree membership for the merge.
func encodeGo(done bool, extras, alive []int) []byte {
	var w engine.Writer
	if done {
		w.Int(1)
	} else {
		w.Int(0)
	}
	w.Uint(uint64(len(extras)))
	for _, pi := range extras {
		w.Int(int64(pi))
	}
	w.Uint(uint64(len(alive)))
	for _, a := range alive {
		w.Int(int64(a))
	}
	return w.Bytes()
}

func decodeGo(data []byte) (done bool, extras, alive []int, err error) {
	r := engine.NewReader(data)
	done = r.Int() != 0
	n := int(r.Uint())
	for i := 0; i < n && r.Err() == nil; i++ {
		extras = append(extras, int(r.Int()))
	}
	n = int(r.Uint())
	for i := 0; i < n && r.Err() == nil; i++ {
		alive = append(alive, int(r.Int()))
	}
	return done, extras, alive, r.Err()
}

// treeMembers is the reduction-tree membership: the master plus every
// live worker. The crash-aware tree protocol requires the membership to
// cover all live ranks, which this is by construction.
func treeMembers(alive []int) []int {
	members := make([]int, 0, len(alive)+1)
	members = append(members, 0)
	return append(members, alive...)
}

// treeCombiner builds the TreeReduce combiner for batch metadata: decode
// both bundles, merge per query with the master's exact selection rule,
// and charge the merge cost on the COMBINING rank's clock — that
// distribution of merge work off the master's critical path is the whole
// point of the hierarchical merge. Decode failures land in *errp (the
// combiner signature has no error path).
func treeCombiner(r *mpi.Rank, maxTargets int, errp *error) func(a, b []byte) []byte {
	return func(a, b []byte) []byte {
		ba, err := decodeBatchMetas(a)
		if err != nil {
			*errp = err
			return nil
		}
		bb, err := decodeBatchMetas(b)
		if err != nil {
			*errp = err
			return nil
		}
		items := engine.MergeCost(ba.PerQuery, bb.PerQuery)
		r.Advance(float64(items) * r.Cost().MergeItemCost)
		merged := engine.CombineQueryMetas(ba.PerQuery, bb.PerQuery, maxTargets)
		kept := 0
		for _, qm := range merged {
			kept += len(qm.Hits)
		}
		engine.RecordMerge(r.Metrics(), r.ID(), items, kept)
		out := batchMetas{FirstQuery: ba.FirstQuery, PerQuery: merged}
		return out.encode()
	}
}

// encodeSelectionBundle packs every worker's output selection into the one
// payload the layout broadcast carries down the tree. ok=false is the
// abort marker: a member crashed mid-merge and the batch cannot complete.
func encodeSelectionBundle(ok bool, sel []selection, workers []int) []byte {
	var w engine.Writer
	if !ok {
		w.Int(0)
		return w.Bytes()
	}
	w.Int(1)
	w.Uint(uint64(len(workers)))
	for _, wk := range workers {
		w.Int(int64(wk))
		w.Blob(sel[wk].encode())
	}
	return w.Bytes()
}

// decodeSelectionBundle extracts this worker's selection from the layout
// broadcast. ok=false reports the master's abort marker.
func decodeSelectionBundle(data []byte, worker int) (sel selection, ok bool, err error) {
	r := engine.NewReader(data)
	if r.Int() == 0 {
		return selection{}, false, r.Err()
	}
	n := int(r.Uint())
	for i := 0; i < n && r.Err() == nil; i++ {
		wk := int(r.Int())
		blob := r.Blob()
		if wk == worker {
			s, err := decodeSelection(blob)
			return s, true, err
		}
	}
	if r.Err() != nil {
		return selection{}, false, r.Err()
	}
	return selection{}, true, fmt.Errorf("core: layout broadcast misses worker %d", worker)
}

func decodeSelection(data []byte) (selection, error) {
	r := engine.NewReader(data)
	n := int(r.Uint())
	var s selection
	for i := 0; i < n && r.Err() == nil; i++ {
		s.Queries = append(s.Queries, int(r.Int()))
		s.OIDs = append(s.OIDs, int(r.Int()))
		s.Offsets = append(s.Offsets, r.Int())
		s.Lengths = append(s.Lengths, r.Int())
	}
	return s, r.Err()
}

// Run executes pioBLAST on nprocs ranks (rank 0 master, workers 1..n-1).
// The database is the ONE global formatted database — no fragments needed.
func Run(nodes []*vfs.Node, nprocs int, cost simtime.CostModel, job *engine.Job, opts Options) (engine.RunResult, error) {
	return RunConfig(nodes, nprocs, mpi.Config{Cost: cost, Speeds: opts.NodeSpeeds}, job, opts)
}

// RunConfig is Run with an explicit MPI configuration (heterogeneity).
func RunConfig(nodes []*vfs.Node, nprocs int, cfg mpi.Config, job *engine.Job, opts Options) (engine.RunResult, error) {
	if err := job.Validate(); err != nil {
		return engine.RunResult{}, err
	}
	if nprocs < 2 {
		return engine.RunResult{}, fmt.Errorf("core: need ≥2 ranks (1 master + workers), got %d", nprocs)
	}
	if len(nodes) < nprocs {
		return engine.RunResult{}, fmt.Errorf("core: %d nodes for %d ranks", len(nodes), nprocs)
	}
	if opts.QueryBatch < 0 {
		return engine.RunResult{}, fmt.Errorf("core: negative query batch %d", opts.QueryBatch)
	}
	if err := opts.IOHints.Validate(); err != nil {
		return engine.RunResult{}, err
	}
	shared := nodes[0].Shared
	db, err := formatdb.Open(shared, job.DBBase)
	if err != nil {
		return engine.RunResult{}, err
	}
	workers := nprocs - 1
	nParts := job.Fragments
	if nParts == 0 {
		nParts = workers // natural partitioning
	}
	parts, err := db.Partition(nParts)
	if err != nil {
		return engine.RunResult{}, err
	}
	wireParts := make([][]wireExtent, len(parts))
	for pi, p := range parts {
		for _, e := range p.Extents {
			v := &db.Volumes[e.Volume]
			wireParts[pi] = append(wireParts[pi], wireExtent{
				VolBase:     v.Base,
				From:        e.From,
				To:          e.To,
				OIDFrom:     e.OIDFrom,
				HdrOff:      e.HdrOff,
				HdrLen:      e.HdrLen,
				SeqOff:      e.SeqOff,
				SeqLen:      e.SeqLen,
				HdrArrayPos: v.HdrOffsetArrayPos(e.From),
				SeqArrayPos: v.SeqOffsetArrayPos(e.From),
			})
		}
	}
	batch := opts.QueryBatch
	if batch < 1 {
		batch = 1
	}
	// Failure recovery only covers workers: the master holds the output
	// layout and the failure detector itself.
	for _, f := range cfg.Faults {
		if f.Rank == 0 && f.Kind == mpi.FaultCrash {
			return engine.RunResult{}, fmt.Errorf("core: cannot inject a crash into rank 0 (the master)")
		}
	}
	ft := opts.FaultTolerant || len(cfg.Faults) > 0
	ftTimeout := opts.FaultTimeout
	if ftTimeout <= 0 {
		ftTimeout = 250 * cfg.Cost.NetLatency
	}
	fanout := opts.MergeFanout
	if fanout == 0 {
		fanout = mpi.DefaultTreeFanout
	}
	if opts.TreeMerge && fanout < 2 {
		return engine.RunResult{}, fmt.Errorf("core: merge fan-out %d < 2", opts.MergeFanout)
	}
	meta := jobMeta{
		Queries:     engine.EncodeWireQueries(engine.PackQueries(job.Queries)),
		Title:       db.Title,
		Kind:        db.Kind,
		NumSeqs:     db.NumSeqs,
		TotalLen:    db.TotalResidues,
		Parts:       wireParts,
		OutputPath:  job.OutputPath,
		EarlyPrune:  opts.EarlyPrune,
		Independent: opts.IndependentOutput,
		Dynamic:     opts.DynamicAssignment,
		Collective:  opts.CollectiveRead,
		Prefetch:    opts.PrefetchDepth,
		QueryBatch:  batch,
		MemBudget:   opts.MemoryBudgetBytes,
		FT:          ft,
		FTTimeout:   ftTimeout,
		Tree:        opts.TreeMerge,
		TreeFanout:  fanout,
		IOHints:     opts.IOHints,
	}
	if meta.Prefetch < 0 {
		meta.Prefetch = 0
	}
	// The master reads the (small) index files to compute the partition.
	var indexBytes int64
	for _, v := range db.Volumes {
		if f, err := shared.Open(formatdb.IndexPath(v.Base)); err == nil {
			indexBytes += f.Size()
		}
	}

	if cfg.Comm == nil {
		cfg.Comm = mpi.NewCommStats(nprocs)
	}
	// Per-query latency sink, filled by the master goroutine and read only
	// after mpi.RunConfig returns (the run's WaitGroup is the barrier).
	qlat := make([]float64, len(job.Queries))
	clocks, err := mpi.RunConfig(nprocs, cfg, func(r *mpi.Rank) error {
		if r.ID() == 0 {
			return runMaster(r, nodes[0], job, meta, indexBytes, opts.IOTuner, qlat)
		}
		return runWorker(r, nodes[r.ID()], job.Options, opts.IOTuner)
	})
	if err != nil {
		return engine.RunResult{}, err
	}
	var outBytes int64
	if f, err := shared.Open(job.OutputPath); err == nil {
		outBytes = f.Size()
	}
	res := engine.Summarize(clocks, outBytes)
	res.QueryLatencies = qlat
	res.CommBytes, res.ShuffleBytes, res.CollectiveBytes, res.CommMessages = cfg.Comm.Totals()
	res.AddIOFaults(nodes)
	return res, nil
}

// runBatches drives fn over the half-open ranges defined by boundary list
// bounds (bounds[i] .. bounds[i+1]).
func runBatches(bounds []int, fn func(int, int) error) error {
	for i := 0; i+1 < len(bounds); i++ {
		if err := fn(bounds[i], bounds[i+1]); err != nil {
			return err
		}
	}
	return nil
}

// adaptiveBounds packs queries into batches whose summed cached-output
// volume stays within the budget (every batch holds at least one query).
// All ranks compute this from identical global volumes, so the boundaries
// agree everywhere.
func adaptiveBounds(volumes []int64, budget int64) []int {
	if len(volumes) == 0 {
		return []int{0}
	}
	bounds := []int{0}
	var acc int64
	for q := range volumes {
		if q > bounds[len(bounds)-1] && acc+volumes[q] > budget {
			bounds = append(bounds, q)
			acc = 0
		}
		acc += volumes[q]
	}
	return append(bounds, len(volumes))
}

// exchangeVolumes AllGathers each rank's per-query cached-output volume
// estimates and returns the global per-query totals — the consensus input
// to adaptive batching. The master participates with zeros.
func exchangeVolumes(r *mpi.Rank, local []int64) []int64 {
	var w engine.Writer
	for _, v := range local {
		w.Int(v)
	}
	all := r.AllGather(w.Bytes())
	total := make([]int64, len(local))
	for _, data := range all {
		if len(data) == 0 {
			continue // crashed rank: contributes nothing
		}
		rd := engine.NewReader(data)
		for q := range total {
			total[q] += rd.Int()
		}
	}
	return total
}

func runMaster(r *mpi.Rank, node *vfs.Node, job *engine.Job, meta jobMeta, indexBytes int64, tuner *mpiio.Tuner, qlat []float64) error {
	r.SetPhase(simtime.PhaseOther)
	r.Advance(r.Cost().SetupCost)
	r.SetPhase(simtime.PhaseInput)
	r.IO(node.Shared, indexBytes) // read the global index files for partitioning
	r.SetPhase(simtime.PhaseOther)
	r.Bcast(0, engine.EncodeGob(meta))
	// Admission: every query is "in the system" once the job metadata
	// broadcast completes — the latency baseline for all queries.
	admit := r.Clock().Now()

	workers := r.Size() - 1
	alive := make([]int, 0, workers)
	for w := 1; w <= workers; w++ {
		alive = append(alive, w)
	}
	// partsOf records which virtual partitions each worker is responsible
	// for; pending collects partitions reclaimed from crashed workers.
	partsOf := make([][]int, workers+1)
	var pending []int
	if meta.Dynamic {
		// Greedy run-time assignment of virtual fragments (§5): serve
		// part requests until every worker has been told "done".
		r.SetPhase(simtime.PhaseIdle)
		next := 0
		if meta.FT {
			served := make(map[int]bool)
			for {
				allServed := true
				for _, w := range alive {
					if !served[w] {
						allServed = false
						break
					}
				}
				if allServed {
					break
				}
				_, from, _, err := r.RecvTimeout(mpi.AnySource, tagPartReq, meta.FTTimeout)
				if err != nil {
					// Timeout (AnySource never reports a specific failure):
					// check ground truth for crashed workers and reclaim
					// their assignments.
					alive, pending = reapDead(r, alive, partsOf, pending)
					continue
				}
				if r.Failed(from) {
					continue // the requester crashed after sending
				}
				if next < len(meta.Parts) {
					partsOf[from] = append(partsOf[from], next)
					r.Send(from, tagPartAssign, engine.EncodeInt(next))
					next++
				} else {
					r.Send(from, tagPartAssign, engine.EncodeInt(-1))
					served[from] = true
				}
			}
		} else {
			done := 0
			for done < workers {
				_, from, _ := r.Recv(mpi.AnySource, tagPartReq)
				if next < len(meta.Parts) {
					r.Send(from, tagPartAssign, engine.EncodeInt(next))
					next++
				} else {
					r.Send(from, tagPartAssign, engine.EncodeInt(-1))
					done++
				}
			}
		}
	} else {
		for pi := range meta.Parts {
			partsOf[pi%workers+1] = append(partsOf[pi%workers+1], pi)
		}
		if meta.Collective {
			// Participate (with empty views) in the workers' collective
			// input reads — three per volume. The master usually serves
			// an aggregator domain here, turning otherwise idle time into
			// useful sequential I/O.
			r.SetPhase(simtime.PhaseInput)
			if _, err := readPartsCollective(r, newFileCache(r, node.Shared, meta.IOHints, tuner), meta, nil); err != nil {
				return err
			}
			r.SetPhase(simtime.PhaseIdle)
		}
	}

	if meta.FT {
		var err error
		alive, err = syncWorkers(r, meta, alive, partsOf, pending)
		if err != nil {
			return err
		}
	}

	searcher, err := blast.NewSearcher(job.Options)
	if err != nil {
		return err
	}
	maxTargets := searcher.Options().MaxTargetSeqs
	out := mpiio.OpenOrCreate(r, node.Shared, job.OutputPath)
	if err := out.SetHints(meta.IOHints); err != nil {
		return err
	}
	dbInfo := blast.DBInfo{Title: meta.Title, NumSeqs: meta.NumSeqs, TotalLen: meta.TotalLen}

	recvWorker := recvWorkerFn(r, meta)

	bounds := fixedBounds(len(job.Queries), meta.QueryBatch)
	if meta.MemBudget > 0 {
		r.SetPhase(simtime.PhaseIdle)
		volumes := exchangeVolumes(r, make([]int64, len(job.Queries)))
		bounds = adaptiveBounds(volumes, meta.MemBudget)
	}
	mb := &masterBatch{
		r: r, meta: meta, renderOpts: job.Options, searcher: searcher,
		maxTargets: maxTargets, dbInfo: dbInfo, out: out,
	}
	batchIdx := -1
	err = runBatches(bounds, func(q0, q1 int) error {
		// Stamp the batch ordinal as the trace context: every envelope the
		// master sends for this batch carries it, and receivers propagate it.
		batchIdx++
		r.SetTraceBatch(batchIdx)
		return mb.mergeBatch(job.Queries, q0, q1, alive, recvWorker, func(q int) {
			// The query's results are now globally merged and laid out:
			// its end-to-end latency is settled on the master's clock.
			lat := r.Clock().Now() - admit
			qlat[q] = lat
			engine.RecordQueryLatency(r.Metrics(), r.ID(), lat)
		})
	})
	if err != nil {
		return err
	}
	r.SetPhase(simtime.PhaseOther)
	r.Barrier()
	return nil
}

// recvWorkerFn builds the master's receive primitive: under fault
// tolerance a crash during the output phase is unrecoverable (the dead
// worker's cached blocks are gone and the layout is already partly
// written), so it is reported as a clean error instead of a deadlock.
func recvWorkerFn(r *mpi.Rank, meta jobMeta) func(w, tag int) ([]byte, error) {
	return func(w, tag int) ([]byte, error) {
		if !meta.FT {
			data, _, _ := r.Recv(w, tag)
			return data, nil
		}
		for {
			data, _, _, err := r.RecvTimeout(w, tag, meta.FTTimeout)
			if err == nil {
				return data, nil
			}
			if errors.Is(err, mpi.ErrRankFailed) {
				return nil, fmt.Errorf("core: worker %d crashed during the output phase; recovery only covers the search phase: %w", w, err)
			}
		}
	}
}

// masterBatch carries the master's cross-batch merge state: the open
// output file and the running layout offset persist across batches (and,
// in the serving mode, across admitted stream batches).
type masterBatch struct {
	r          *mpi.Rank
	meta       jobMeta
	renderOpts blast.Options
	searcher   *blast.Searcher
	maxTargets int
	dbInfo     blast.DBInfo
	out        *mpiio.File
	off        int64
}

// mergeBatch runs the master side of one batch over queries[q0:q1]:
// early-prune participation, metadata collection (flat per-worker streams
// or one hierarchical tree reduction), the global merge and output-file
// layout (§3.3, Figure 2), the selection send-back, and the collective
// write. onQueryDone fires as each query's merge completes, on the
// master's clock — the caller owns the latency baseline. Shared verbatim
// by the one-shot run and the serving loop, which is what makes streamed
// output byte-identical to the one-shot oracle.
func (mb *masterBatch) mergeBatch(queries []*seq.Sequence, q0, q1 int, alive []int, recvWorker func(w, tag int) ([]byte, error), onQueryDone func(q int)) error {
	r, meta := mb.r, mb.meta
	workers := r.Size() - 1
	// While the workers finish this batch, the master is parked.
	r.SetPhase(simtime.PhaseIdle)
	if meta.EarlyPrune {
		for q := q0; q < q1; q++ {
			exchangeThreshold(r, nil, mb.maxTargets) // participate, contribute nothing
		}
	}
	// Collect the per-query metadata: either the flat per-worker
	// streams (baseline) or one hierarchical tree reduction whose
	// result is already the globally merged selection.
	var treeMerged []engine.QueryMeta
	perWorker := make([]batchMetas, workers+1)
	if meta.Tree {
		members := treeMembers(alive)
		// The master contributes an identity bundle covering every
		// query, so the fold always yields the full batch range.
		id := batchMetas{FirstQuery: q0}
		for q := q0; q < q1; q++ {
			id.PerQuery = append(id.PerQuery, engine.QueryMeta{QueryIndex: q})
		}
		var combErr error
		combined, contributors, err := r.TreeReduce(0, meta.TreeFanout, members, id.encode(), treeCombiner(r, mb.maxTargets, &combErr))
		if err != nil {
			return err
		}
		if combErr != nil {
			return combErr
		}
		r.SetPhase(simtime.PhaseOutput)
		if len(contributors) != len(members) {
			// A member crashed mid-merge: its cached blocks are gone
			// and its hits are unrecoverable. Tell the survivors to
			// stand down (the abort marker), then fail cleanly —
			// matching the flat path's output-phase contract.
			r.TreeBcast(0, meta.TreeFanout, members, encodeSelectionBundle(false, nil, nil))
			return fmt.Errorf("core: worker crashed during the hierarchical merge; recovery only covers the search phase")
		}
		bm, err := decodeBatchMetas(combined)
		if err != nil {
			return err
		}
		if len(bm.PerQuery) != q1-q0 {
			return fmt.Errorf("core: tree merge returned %d queries, want %d", len(bm.PerQuery), q1-q0)
		}
		treeMerged = bm.PerQuery
	} else {
		for _, w := range alive {
			data, err := recvWorker(w, tagResults)
			if err != nil {
				return err
			}
			bm, err := decodeBatchMetas(data)
			if err != nil {
				return err
			}
			perWorker[w] = bm
		}
	}

	// Merge metadata and lay out the output file (§3.3, Figure 2).
	r.SetPhase(simtime.PhaseOutput)
	sel := make([]selection, workers+1)
	var masterData []byte
	var view mpiio.View
	for q := q0; q < q1; q++ {
		var merged []engine.HitMeta
		var work blast.WorkCounters
		if meta.Tree {
			// The reduction already applied the global selection rule;
			// the master only lays out the file.
			merged = treeMerged[q-q0].Hits
			work = treeMerged[q-q0].Work
		} else {
			var all []engine.HitMeta
			for _, w := range alive {
				qm := perWorker[w].PerQuery[q-q0]
				all = append(all, qm.Hits...)
				work.Add(qm.Work)
			}
			r.Advance(float64(len(all)) * r.Cost().MergeItemCost)
			merged = engine.MergeHits(all, mb.maxTargets)
			engine.RecordMerge(r.Metrics(), r.ID(), len(all), len(merged))
		}

		query := queries[q]
		header := blast.RenderHeader(mb.renderOpts.OutFormat, meta.Kind, query, mb.dbInfo)
		summary := blast.RenderSummary(mb.renderOpts.OutFormat, engine.SummaryResults(merged))
		space := engine.SearchSpaceFor(mb.searcher, query.Len(), meta.TotalLen, meta.NumSeqs)
		footer := blast.RenderFooter(mb.renderOpts.OutFormat, mb.searcher.GappedParams(), space, work)
		r.FormatCost(int64(len(header)+len(summary)+len(footer)) / 8)

		headOff := mb.off
		cur := mb.off + int64(len(header)+len(summary))
		for _, h := range merged {
			s := &sel[h.Worker]
			s.Queries = append(s.Queries, q)
			s.OIDs = append(s.OIDs, h.OID)
			s.Offsets = append(s.Offsets, cur)
			s.Lengths = append(s.Lengths, h.BlockSize)
			cur += h.BlockSize
		}
		masterData = append(masterData, header...)
		masterData = append(masterData, summary...)
		masterData = append(masterData, footer...)
		view.Segments = append(view.Segments,
			mpiio.Segment{Offset: headOff, Length: int64(len(header) + len(summary))},
			mpiio.Segment{Offset: cur, Length: int64(len(footer))})
		mb.off = cur + int64(len(footer))
		onQueryDone(q)
	}
	if meta.Tree {
		// Layout broadcast down the tree (§3.3): one bundle holding
		// every worker's selection instead of N point-to-point sends.
		r.TreeBcast(0, meta.TreeFanout, treeMembers(alive), encodeSelectionBundle(true, sel, alive))
	} else {
		for _, w := range alive {
			r.Send(w, tagSelect, sel[w].encode())
		}
	}
	if err := mb.out.SetView(view); err != nil {
		return err
	}
	if meta.Independent {
		if err := mb.out.WriteIndependent(masterData); err != nil {
			return err
		}
		r.Barrier()
		return nil
	}
	return mb.out.WriteCollective(masterData)
}

// reapDead removes crashed workers from the alive list, reclaiming their
// virtual partitions into pending. Safe to call repeatedly: a reclaimed
// worker's partsOf entry is cleared.
func reapDead(r *mpi.Rank, alive []int, partsOf [][]int, pending []int) (live, newPending []int) {
	live = alive[:0]
	for _, w := range alive {
		if r.Failed(w) {
			pending = append(pending, partsOf[w]...)
			partsOf[w] = nil
			continue
		}
		live = append(live, w)
	}
	return live, pending
}

// syncWorkers runs the master side of the post-search ready/go rendezvous:
// collect a ready message from every live worker (crashes detected by
// timeout plus ground-truth liveness check), re-issue dead workers' virtual
// partitions to survivors — offsets only, no data movement — and repeat
// until a round completes with nothing left to recover. Returns the final
// alive set.
func syncWorkers(r *mpi.Rank, meta jobMeta, alive []int, partsOf [][]int, pending []int) ([]int, error) {
	r.SetPhase(simtime.PhaseIdle)
	for {
		var survivors []int
		for _, w := range alive {
			for {
				_, _, _, err := r.RecvTimeout(w, tagReady, meta.FTTimeout)
				if err == nil {
					survivors = append(survivors, w)
					break
				}
				if errors.Is(err, mpi.ErrRankFailed) {
					pending = append(pending, partsOf[w]...)
					partsOf[w] = nil
					break
				}
				// Timed out: the worker is alive but still searching.
			}
		}
		alive = survivors
		if len(alive) == 0 {
			return nil, fmt.Errorf("core: all workers failed; cannot recover")
		}
		if len(pending) == 0 {
			for _, w := range alive {
				r.Send(w, tagGo, encodeGo(true, nil, alive))
			}
			return alive, nil
		}
		// Re-issue the reclaimed partitions round-robin. Recovery is cheap
		// by construction (§3.1): a partition is a set of offset ranges into
		// the shared global database, so survivors just read and re-search
		// those ranges — no fragment files to re-copy.
		r.Metrics().Counter("engine.parts_reissued", r.ID()).Add(int64(len(pending)))
		extra := make(map[int][]int)
		for i, pi := range pending {
			w := alive[i%len(alive)]
			extra[w] = append(extra[w], pi)
			partsOf[w] = append(partsOf[w], pi)
		}
		pending = nil
		for _, w := range alive {
			r.Send(w, tagGo, encodeGo(false, extra[w], nil))
		}
	}
}

// workerState is everything a worker caches between the search and output
// phases: the subjects it searched, plus per-query hit lists.
type workerState struct {
	frag  blast.Fragment // all subjects this worker searched
	byOID map[int]int    // OID -> index into frag.Subjects
	hits  [][]*blast.SubjectResult
	work  []blast.WorkCounters
}

func runWorker(r *mpi.Rank, node *vfs.Node, opts blast.Options, tuner *mpiio.Tuner) error {
	r.SetPhase(simtime.PhaseOther)
	r.Advance(r.Cost().SetupCost)
	var meta jobMeta
	if err := engine.DecodeGob(r.Bcast(0, nil), &meta); err != nil {
		return err
	}
	if meta.Serve {
		// Streaming run: queries arrive per batch; partitions stay warm.
		return runServeWorker(r, node, meta, opts, tuner)
	}
	wq, err := engine.DecodeWireQueries(meta.Queries)
	if err != nil {
		return err
	}
	queries := wq.Unpack()
	searcher, err := blast.NewSearcher(opts)
	if err != nil {
		return err
	}
	maxTargets := searcher.Options().MaxTargetSeqs
	ctx := searcher.NewContext()

	st := &workerState{
		byOID: make(map[int]int),
		hits:  make([][]*blast.SubjectResult, len(queries)),
		work:  make([]blast.WorkCounters, len(queries)),
	}

	// Phase 1: acquire virtual fragments and search every query against
	// them. Static mode reads a fixed set ("the input stage") — optionally
	// with collective reads or an async prefetch pipeline; dynamic mode
	// interleaves greedy assignment, reading, and searching.
	files := newFileCache(r, node.Shared, meta.IOHints, tuner)
	searchFrag := func(frag *blast.Fragment) error {
		base := len(st.frag.Subjects)
		st.frag.Subjects = append(st.frag.Subjects, frag.Subjects...)
		for i := base; i < len(st.frag.Subjects); i++ {
			st.byOID[st.frag.Subjects[i].OID] = i
		}
		r.SetPhase(simtime.PhaseSearch)
		for qi, q := range queries {
			if err := ctx.SetQuery(q); err != nil {
				return err
			}
			space := engine.SearchSpaceFor(searcher, q.Len(), meta.TotalLen, meta.NumSeqs)
			res, err := ctx.SearchFragment(frag, space)
			if err != nil {
				return err
			}
			r.Compute(res.Work.Units())
			engine.RecordWork(r.Metrics(), r.ID(), res.Work)
			st.hits[qi] = append(st.hits[qi], res.Hits...)
			st.work[qi].Add(res.Work)
			r.Yield()
		}
		return nil
	}
	searchPart := func(part []wireExtent) error {
		r.Yield() // keep virtual-time order across ranks' storage accesses
		r.SetPhase(simtime.PhaseInput)
		frag, err := readPart(files, part)
		if err != nil {
			return err
		}
		return searchFrag(frag)
	}
	// searchPipelined searches a known list of partitions, keeping the
	// asynchronous reads of up to meta.Prefetch upcoming partitions in
	// flight while the current one is searched.
	searchPipelined := func(parts []int) error {
		fetches := make([]*partFetch, len(parts))
		next := 0
		for cur := range parts {
			r.Yield()
			r.SetPhase(simtime.PhaseInput)
			for next <= cur+meta.Prefetch && next < len(parts) {
				pf, err := startPartFetch(files, meta.Parts[parts[next]])
				if err != nil {
					return err
				}
				fetches[next] = pf
				next++
			}
			frag, err := fetches[cur].finish()
			fetches[cur] = nil
			if err != nil {
				return err
			}
			if err := searchFrag(frag); err != nil {
				return err
			}
		}
		return nil
	}
	searchStatic := func(parts []int) error {
		if meta.Prefetch > 0 {
			return searchPipelined(parts)
		}
		for _, pi := range parts {
			if err := searchPart(meta.Parts[pi]); err != nil {
				return err
			}
		}
		return nil
	}

	workers := r.Size() - 1
	var mine []int
	for pi := range meta.Parts {
		if pi%workers == r.ID()-1 {
			mine = append(mine, pi)
		}
	}
	switch {
	case meta.Dynamic && meta.Prefetch > 0:
		// Pipeline the greedy protocol one partition deep: the next
		// assignment is requested — and its reads started — before the
		// current partition is searched, so both the master round trip
		// and the input I/O hide behind the search.
		reqPart := func() {
			r.SetPhase(simtime.PhaseIdle)
			r.Send(0, tagPartReq, nil)
		}
		recvAssign := func() (int, error) {
			r.SetPhase(simtime.PhaseIdle)
			data, _, _ := r.Recv(0, tagPartAssign)
			return engine.DecodeInt(data)
		}
		startFetch := func(pi int) (*partFetch, error) {
			reqPart()
			r.Yield()
			r.SetPhase(simtime.PhaseInput)
			return startPartFetch(files, meta.Parts[pi])
		}
		reqPart()
		cur, err := recvAssign()
		if err != nil {
			return err
		}
		var curFetch *partFetch
		if cur >= 0 {
			if curFetch, err = startFetch(cur); err != nil {
				return err
			}
		}
		for cur >= 0 {
			nxt, err := recvAssign()
			if err != nil {
				return err
			}
			var nxtFetch *partFetch
			if nxt >= 0 {
				if nxtFetch, err = startFetch(nxt); err != nil {
					return err
				}
			}
			r.SetPhase(simtime.PhaseInput)
			frag, err := curFetch.finish()
			if err != nil {
				return err
			}
			if err := searchFrag(frag); err != nil {
				return err
			}
			cur, curFetch = nxt, nxtFetch
		}
	case meta.Dynamic:
		for {
			// The request/assign rendezvous is queueing, not search: the
			// master may be busy serving other workers.
			r.SetPhase(simtime.PhaseIdle)
			r.Send(0, tagPartReq, nil)
			data, _, _ := r.Recv(0, tagPartAssign)
			part, err := engine.DecodeInt(data)
			if err != nil {
				return err
			}
			if part < 0 {
				break
			}
			if err := searchPart(meta.Parts[part]); err != nil {
				return err
			}
		}
	case meta.Collective:
		r.Yield()
		r.SetPhase(simtime.PhaseInput)
		frags, err := readPartsCollective(r, files, meta, mine)
		if err != nil {
			return err
		}
		for _, pi := range mine {
			if err := searchFrag(frags[pi]); err != nil {
				return err
			}
		}
	default:
		if err := searchStatic(mine); err != nil {
			return err
		}
	}

	// Ready/go rendezvous (fault tolerance): report the search phase done,
	// then either proceed to output or absorb partitions reclaimed from
	// crashed peers and search them too.
	// aliveWorkers is this worker's view of the surviving worker set —
	// the tree-merge membership. Without fault tolerance nobody can die;
	// with it, the final go message carries the master's survivor list.
	aliveWorkers := make([]int, 0, workers)
	for w := 1; w <= workers; w++ {
		aliveWorkers = append(aliveWorkers, w)
	}
	if meta.FT {
		for {
			r.SetPhase(simtime.PhaseIdle)
			r.Send(0, tagReady, nil)
			data, _, _ := r.Recv(0, tagGo)
			done, extras, alive, err := decodeGo(data)
			if err != nil {
				return err
			}
			// Re-issued partitions are re-read with the static path
			// (independent reads, prefetched when enabled): the crashed
			// peers a collective would need are gone.
			if err := searchStatic(extras); err != nil {
				return err
			}
			if done {
				aliveWorkers = alive
				break
			}
		}
	}

	// Phase 2: per-batch merge and parallel output.
	outFile := mpiio.OpenOrCreate(r, node.Shared, meta.OutputPath)
	if err := outFile.SetHints(meta.IOHints); err != nil {
		return err
	}
	bounds := fixedBounds(len(queries), meta.QueryBatch)
	if meta.MemBudget > 0 {
		// Adaptive batching (§5): agree on batch boundaries sized to the
		// memory budget, using cheap per-query volume estimates (the
		// alignment panels dominate a block, ≈4 bytes per subject residue
		// in the aligned span).
		r.SetPhase(simtime.PhaseOutput)
		local := make([]int64, len(queries))
		for q := range queries {
			var est int64
			for _, hit := range st.hits[q] {
				for _, h := range hit.HSPs {
					est += int64(4*(h.SubjTo-h.SubjFrom)) + 256
				}
			}
			local[q] = est
		}
		volumes := exchangeVolumes(r, local)
		bounds = adaptiveBounds(volumes, meta.MemBudget)
	}
	workerBatch := -1
	err = runBatches(bounds, func(q0, q1 int) error {
		workerBatch++
		r.SetTraceBatch(workerBatch)
		return workerOutputBatch(r, meta, opts, maxTargets, outFile, queries, q0, q1, st, aliveWorkers)
	})
	if err != nil {
		return err
	}
	r.SetPhase(simtime.PhaseOther)
	r.Barrier()
	return nil
}

// workerOutputBatch runs the worker side of one batch's merge/output over
// queries[q0:q1]: local hit consolidation, optional early-prune exchange,
// result-caching block rendering (§3.2), metadata submission (flat or
// tree), and the selection-ordered collective write (§3.3). Shared
// verbatim by the one-shot run and the serving loop.
func workerOutputBatch(r *mpi.Rank, meta jobMeta, opts blast.Options, maxTargets int, outFile *mpiio.File, queries []*seq.Sequence, q0, q1 int, st *workerState, aliveWorkers []int) error {
	r.SetPhase(simtime.PhaseOutput)
	// Consolidate each query's hits across this worker's parts.
	for q := q0; q < q1; q++ {
		blast.SortHits(st.hits[q])
		if len(st.hits[q]) > maxTargets {
			st.hits[q] = st.hits[q][:maxTargets]
		}
	}
	if meta.EarlyPrune {
		for q := q0; q < q1; q++ {
			scores := make([]int64, 0, len(st.hits[q]))
			for _, h := range st.hits[q] {
				scores = append(scores, int64(h.BestScore()))
			}
			threshold := exchangeThreshold(r, scores, maxTargets)
			kept := st.hits[q][:0]
			for _, h := range st.hits[q] {
				if int64(h.BestScore()) >= threshold {
					kept = append(kept, h)
				}
			}
			st.hits[q] = kept
		}
	}
	// Result caching (§3.2): render candidate blocks into memory and
	// submit metadata only.
	blocks := make(map[[2]int][]byte)
	bm := batchMetas{FirstQuery: q0}
	for q := q0; q < q1; q++ {
		qm := engine.QueryMeta{QueryIndex: q, Work: st.work[q]}
		for _, hit := range st.hits[q] {
			subj := st.frag.Subjects[st.byOID[hit.OID]].Residues
			block := []byte(blast.RenderHit(opts.OutFormat, queries[q], subj, hit, opts.Matrix))
			r.FormatCost(int64(len(block)))
			blocks[[2]int{q, hit.OID}] = block
			qm.Hits = append(qm.Hits, engine.MetaFromResult(r.ID(), hit, int64(len(block))))
		}
		bm.PerQuery = append(bm.PerQuery, qm)
	}
	r.Metrics().Counter("engine.blocks_rendered", r.ID()).Add(int64(len(blocks)))
	var sel selection
	if meta.Tree {
		// Hierarchical merge: fold this worker's metadata into the
		// k-ary reduction (pre-merging the group's bundles locally)
		// and take the layout from the down-tree broadcast.
		members := treeMembers(aliveWorkers)
		var combErr error
		if _, _, err := r.TreeReduce(0, meta.TreeFanout, members, bm.encode(), treeCombiner(r, maxTargets, &combErr)); err != nil {
			return err
		}
		if combErr != nil {
			return combErr
		}
		r.SetPhase(simtime.PhaseIdle)
		layout := r.TreeBcast(0, meta.TreeFanout, members, nil)
		s, ok, err := decodeSelectionBundle(layout, r.ID())
		if err != nil {
			return err
		}
		if !ok {
			return fmt.Errorf("core: merge aborted: a peer crashed during the hierarchical merge")
		}
		sel = s
		r.SetPhase(simtime.PhaseOutput)
	} else {
		r.Send(0, tagResults, bm.encode())

		// Selection: assemble the chosen blocks in offset order and
		// write.
		data, _, _ := r.Recv(0, tagSelect)
		s, err := decodeSelection(data)
		if err != nil {
			return err
		}
		sel = s
	}
	idx := make([]int, len(sel.OIDs))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return sel.Offsets[idx[a]] < sel.Offsets[idx[b]] })
	var view mpiio.View
	var buf []byte
	for _, i := range idx {
		key := [2]int{sel.Queries[i], sel.OIDs[i]}
		block, ok := blocks[key]
		if !ok {
			r.Metrics().Counter("engine.cache_misses", r.ID()).Inc()
			return fmt.Errorf("core: master selected unknown hit q=%d OID=%d", key[0], key[1])
		}
		r.Metrics().Counter("engine.cache_hits", r.ID()).Inc()
		if int64(len(block)) != sel.Lengths[i] {
			return fmt.Errorf("core: block size mismatch for q=%d OID=%d: %d vs %d",
				key[0], key[1], len(block), sel.Lengths[i])
		}
		view.Segments = append(view.Segments, mpiio.Segment{Offset: sel.Offsets[i], Length: sel.Lengths[i]})
		buf = append(buf, block...)
		r.MemCopy(int64(len(block)))
	}
	r.Metrics().Counter("engine.blocks_dropped", r.ID()).Add(int64(len(blocks) - len(idx)))
	if err := outFile.SetView(view); err != nil {
		return err
	}
	if meta.Independent {
		if err := outFile.WriteIndependent(buf); err != nil {
			return err
		}
		r.Barrier()
		return nil
	}
	return outFile.WriteCollective(buf)
}

// fixedBounds builds the boundary list for fixed-size batches. Zero
// queries yield the single boundary [0] — no batches — rather than a
// degenerate empty batch.
func fixedBounds(n, b int) []int {
	if n <= 0 {
		return []int{0}
	}
	if b < 1 {
		b = 1
	}
	bounds := []int{0}
	for start := b; start < n; start += b {
		bounds = append(bounds, start)
	}
	return append(bounds, n)
}

// fileCache deduplicates shared-file opens across a worker's partitions:
// each of the three per-volume database files is opened once and the
// handle reused for every extent of every partition, instead of three
// fresh opens per extent.
type fileCache struct {
	r     *mpi.Rank
	fs    *vfs.FS
	hints mpiio.Hints
	tuner *mpiio.Tuner
	open  map[string]*mpiio.File
}

func newFileCache(r *mpi.Rank, fs *vfs.FS, hints mpiio.Hints, tuner *mpiio.Tuner) *fileCache {
	return &fileCache{r: r, fs: fs, hints: hints, tuner: tuner, open: make(map[string]*mpiio.File)}
}

func (c *fileCache) file(path string) (*mpiio.File, error) {
	if f, ok := c.open[path]; ok {
		return f, nil
	}
	f, err := mpiio.Open(c.r, c.fs, path)
	if err != nil {
		return nil, err
	}
	if err := f.SetHints(c.hints); err != nil {
		return nil, err
	}
	f.SetTuner(c.tuner)
	c.open[path] = f
	return f, nil
}

// readPart reads one virtual fragment's extents from the global shared
// files — contiguous independent reads of the index slices, header range,
// and sequence range; no staging copy.
func readPart(files *fileCache, part []wireExtent) (*blast.Fragment, error) {
	frag := &blast.Fragment{}
	for _, e := range part {
		idx, err := files.file(formatdb.IndexPath(e.VolBase))
		if err != nil {
			return nil, err
		}
		count := e.To - e.From
		hdrOffs := formatdb.DecodeOffsets(idx.ReadAt(e.HdrArrayPos, 8*int64(count+1)))
		seqOffs := formatdb.DecodeOffsets(idx.ReadAt(e.SeqArrayPos, 8*int64(count+1)))
		hdrFile, err := files.file(formatdb.HeaderPath(e.VolBase))
		if err != nil {
			return nil, err
		}
		seqFile, err := files.file(formatdb.SeqPath(e.VolBase))
		if err != nil {
			return nil, err
		}
		hdrBuf := hdrFile.ReadContiguous(e.HdrOff, e.HdrLen)
		seqBuf := seqFile.ReadContiguous(e.SeqOff, e.SeqLen)
		recs, err := formatdb.DecodeWithOffsets(e.OIDFrom, hdrOffs, seqOffs, hdrBuf, seqBuf)
		if err != nil {
			return nil, err
		}
		appendRecords(frag, recs)
	}
	return frag, nil
}

func appendRecords(frag *blast.Fragment, recs []formatdb.Record) {
	for _, rec := range recs {
		frag.Subjects = append(frag.Subjects, blast.Subject{
			OID: rec.OID, ID: rec.ID, Defline: rec.Defline, Residues: rec.Residues,
		})
	}
}

// partFetch holds one partition's in-flight asynchronous extent reads:
// four per extent (header-offset array, sequence-offset array, header
// range, sequence range), issued in readPart's order.
type partFetch struct {
	part  []wireExtent
	reads []*mpiio.AsyncRead
}

// startPartFetch issues the asynchronous reads for one partition without
// advancing the worker's clock — the prefetch half of the input/search
// overlap pipeline.
func startPartFetch(files *fileCache, part []wireExtent) (*partFetch, error) {
	pf := &partFetch{part: part}
	for _, e := range part {
		idx, err := files.file(formatdb.IndexPath(e.VolBase))
		if err != nil {
			return nil, err
		}
		hdrFile, err := files.file(formatdb.HeaderPath(e.VolBase))
		if err != nil {
			return nil, err
		}
		seqFile, err := files.file(formatdb.SeqPath(e.VolBase))
		if err != nil {
			return nil, err
		}
		count := int64(e.To - e.From)
		pf.reads = append(pf.reads,
			idx.StartReadAt(e.HdrArrayPos, 8*(count+1)),
			idx.StartReadAt(e.SeqArrayPos, 8*(count+1)),
			hdrFile.StartReadAt(e.HdrOff, e.HdrLen),
			seqFile.StartReadAt(e.SeqOff, e.SeqLen))
	}
	return pf, nil
}

// finish waits out the partition's reads and decodes the fragment —
// byte-for-byte the same result as readPart.
func (pf *partFetch) finish() (*blast.Fragment, error) {
	frag := &blast.Fragment{}
	ri := 0
	next := func() []byte {
		buf := pf.reads[ri].Wait()
		ri++
		return buf
	}
	for _, e := range pf.part {
		hdrOffs := formatdb.DecodeOffsets(next())
		seqOffs := formatdb.DecodeOffsets(next())
		hdrBuf := next()
		seqBuf := next()
		recs, err := formatdb.DecodeWithOffsets(e.OIDFrom, hdrOffs, seqOffs, hdrBuf, seqBuf)
		if err != nil {
			return nil, err
		}
		appendRecords(frag, recs)
	}
	return frag, nil
}

// packRequests merges possibly overlapping or out-of-order byte ranges
// into a valid (sorted, disjoint) view and returns a slicer recovering
// each original range from the buffer a view-based read yields. Adjacent
// partitions share index-array boundary entries, so their ranges overlap
// by one record — exactly what a single rank owning adjacent partitions
// produces.
func packRequests(reqs []mpiio.Segment) (mpiio.View, func(buf []byte, i int) []byte) {
	order := make([]int, len(reqs))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return reqs[order[a]].Offset < reqs[order[b]].Offset })
	var view mpiio.View
	for _, i := range order {
		s := reqs[i]
		if s.Length == 0 {
			continue
		}
		if n := len(view.Segments); n > 0 {
			last := &view.Segments[n-1]
			if s.Offset <= last.Offset+last.Length {
				if end := s.Offset + s.Length; end > last.Offset+last.Length {
					last.Length = end - last.Offset
				}
				continue
			}
		}
		view.Segments = append(view.Segments, s)
	}
	pos := make([]int64, len(view.Segments))
	var acc int64
	for i, s := range view.Segments {
		pos[i] = acc
		acc += s.Length
	}
	slicer := func(buf []byte, i int) []byte {
		q := reqs[i]
		j := sort.Search(len(view.Segments), func(k int) bool {
			s := view.Segments[k]
			return s.Offset+s.Length > q.Offset
		})
		start := pos[j] + (q.Offset - view.Segments[j].Offset)
		end := start + q.Length
		if end > int64(len(buf)) {
			end = int64(len(buf))
		}
		return buf[start:end]
	}
	return view, slicer
}

// readPartsCollective loads the given partitions with collective two-phase
// reads: for every database volume (in the deterministic order all ranks
// derive from meta.Parts), three ReadCollective calls cover the index
// arrays, header ranges, and sequence ranges of everyone's extents. Ranks
// with no extents in a volume — the master always — participate with empty
// views. Returns one fragment per requested partition, identical to what
// readPart produces.
func readPartsCollective(r *mpi.Rank, files *fileCache, meta jobMeta, mine []int) (map[int]*blast.Fragment, error) {
	var vols []string
	seen := make(map[string]bool)
	for _, part := range meta.Parts {
		for _, e := range part {
			if !seen[e.VolBase] {
				seen[e.VolBase] = true
				vols = append(vols, e.VolBase)
			}
		}
	}
	frags := make(map[int]*blast.Fragment, len(mine))
	type pending struct {
		part int
		e    wireExtent
		recs []formatdb.Record
	}
	for _, pi := range mine {
		frags[pi] = &blast.Fragment{}
	}
	for _, vol := range vols {
		// My extents in this volume, in partition order.
		var exts []pending
		for _, pi := range mine {
			for _, e := range meta.Parts[pi] {
				if e.VolBase == vol {
					exts = append(exts, pending{part: pi, e: e})
				}
			}
		}
		var idxReqs, hdrReqs, seqReqs []mpiio.Segment
		for _, x := range exts {
			arr := 8 * int64(x.e.To-x.e.From+1)
			idxReqs = append(idxReqs,
				mpiio.Segment{Offset: x.e.HdrArrayPos, Length: arr},
				mpiio.Segment{Offset: x.e.SeqArrayPos, Length: arr})
			hdrReqs = append(hdrReqs, mpiio.Segment{Offset: x.e.HdrOff, Length: x.e.HdrLen})
			seqReqs = append(seqReqs, mpiio.Segment{Offset: x.e.SeqOff, Length: x.e.SeqLen})
		}
		readAll := func(path string, reqs []mpiio.Segment) ([]byte, func([]byte, int) []byte, error) {
			f, err := files.file(path)
			if err != nil {
				return nil, nil, err
			}
			view, slicer := packRequests(reqs)
			if err := f.SetView(view); err != nil {
				return nil, nil, err
			}
			buf, err := f.ReadCollective()
			return buf, slicer, err
		}
		idxBuf, idxAt, err := readAll(formatdb.IndexPath(vol), idxReqs)
		if err != nil {
			return nil, err
		}
		hdrBuf, hdrAt, err := readAll(formatdb.HeaderPath(vol), hdrReqs)
		if err != nil {
			return nil, err
		}
		seqBuf, seqAt, err := readAll(formatdb.SeqPath(vol), seqReqs)
		if err != nil {
			return nil, err
		}
		for i, x := range exts {
			hdrOffs := formatdb.DecodeOffsets(idxAt(idxBuf, 2*i))
			seqOffs := formatdb.DecodeOffsets(idxAt(idxBuf, 2*i+1))
			recs, err := formatdb.DecodeWithOffsets(x.e.OIDFrom, hdrOffs, seqOffs,
				hdrAt(hdrBuf, i), seqAt(seqBuf, i))
			if err != nil {
				return nil, err
			}
			appendRecords(frags[x.part], recs)
		}
	}
	return frags, nil
}

// exchangeThreshold implements early score communication: ranks gather
// everyone's candidate scores and return the global k-th best (or a
// sentinel minimum when fewer than k hits exist anywhere). Deterministic
// and identical on every rank.
func exchangeThreshold(r *mpi.Rank, scores []int64, k int) int64 {
	buf := make([]byte, 8*len(scores))
	for i, s := range scores {
		for b := 0; b < 8; b++ {
			buf[8*i+b] = byte(uint64(s) >> (8 * b))
		}
	}
	all := r.AllGather(buf)
	var flat []int64
	for _, d := range all {
		for i := 0; i+8 <= len(d); i += 8 {
			var v uint64
			for b := 0; b < 8; b++ {
				v |= uint64(d[i+b]) << (8 * b)
			}
			flat = append(flat, int64(v))
		}
	}
	if len(flat) < k {
		return -1 << 62
	}
	sort.Slice(flat, func(a, b int) bool { return flat[a] > flat[b] })
	return flat[k-1]
}

// AdaptiveBoundsForTest exposes the batch-boundary computation to tests.
func AdaptiveBoundsForTest(volumes []int64, budget int64) []int {
	return adaptiveBounds(volumes, budget)
}

// FixedBoundsForTest exposes the fixed batch-boundary computation to tests.
func FixedBoundsForTest(n, b int) []int {
	return fixedBounds(n, b)
}

// ExchangeThresholdForTest exposes the early-score threshold exchange.
func ExchangeThresholdForTest(r *mpi.Rank, scores []int64, k int) int64 {
	return exchangeThreshold(r, scores, k)
}
