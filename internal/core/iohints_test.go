package core_test

import (
	"bytes"
	"testing"

	"parblast/internal/core"
	"parblast/internal/mpiio"
	"parblast/internal/vfs"
)

// TestIOStrategiesPreserveOutput sweeps every read strategy (and the
// tuner, which mixes them mid-run while exploring) through the full
// pipeline with collective reads on: the sequential oracle stays the
// byte-identity gate no matter how the bytes reach the workers.
func TestIOStrategiesPreserveOutput(t *testing.T) {
	cases := []struct {
		name string
		opts core.Options
	}{
		{"two-phase", core.Options{CollectiveRead: true,
			IOHints: mpiio.Hints{ReadStrategy: mpiio.StrategyTwoPhase}}},
		{"list-io", core.Options{CollectiveRead: true,
			IOHints: mpiio.Hints{ReadStrategy: mpiio.StrategyListIO}}},
		{"independent", core.Options{CollectiveRead: true,
			IOHints: mpiio.Hints{ReadStrategy: mpiio.StrategyIndependent}}},
		{"explicit gap", core.Options{CollectiveRead: true,
			IOHints: mpiio.Hints{SieveGap: 4096, CbNodes: 2}}},
		{"tuner", core.Options{CollectiveRead: true, IOTuner: mpiio.NewTuner()}},
	}
	fx := makeFixture(t, 400)
	seqOut, _, base, _, _ := runAllThree(t, fx, 4, 0, vfs.XFSLike(), localDisk(),
		core.Options{CollectiveRead: true})
	if !bytes.Equal(seqOut, base) {
		t.Fatal("baseline collective read does not match the oracle")
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			_, _, pioOut, _, _ := runAllThree(t, fx, 4, 0, vfs.XFSLike(), localDisk(), tc.opts)
			if !bytes.Equal(seqOut, pioOut) {
				t.Fatalf("%s output diverges from the sequential oracle", tc.name)
			}
		})
	}
}

// TestIOHintsValidatedUpFront rejects malformed hints before any rank
// starts, instead of failing mid-collective.
func TestIOHintsValidatedUpFront(t *testing.T) {
	fx := makeFixture(t, 200)
	nodes := fx.newCluster(t, 2, vfs.XFSLike(), nil, 0)
	job := *fx.job
	_, err := core.Run(nodes, 2, testCost(), &job, core.Options{
		IOHints: mpiio.Hints{SieveGap: -1},
	})
	if err == nil {
		t.Fatal("core.Run accepted a negative sieve gap")
	}
}

// TestTunerLearnsAcrossPipelineRuns runs the pipeline twice with one
// shared tuner: the second run must exploit what the first (finalized)
// run learned, and stay byte-identical to the oracle while doing it.
func TestTunerLearnsAcrossPipelineRuns(t *testing.T) {
	fx := makeFixture(t, 300)
	tuner := mpiio.NewTuner()
	opts := core.Options{CollectiveRead: true, IOTuner: tuner}
	seqOut, _, first, _, _ := runAllThree(t, fx, 4, 0, vfs.NFSLike(), localDisk(), opts)
	if !bytes.Equal(seqOut, first) {
		t.Fatal("exploring run diverges from the oracle")
	}
	art := tuner.Finalize()
	if len(art.Entries) == 0 {
		t.Fatal("pipeline exploration learned nothing")
	}
	data, err := art.Encode()
	if err != nil {
		t.Fatal(err)
	}
	loaded, err := mpiio.LoadTuner(data)
	if err != nil {
		t.Fatal(err)
	}
	_, _, second, _, _ := runAllThree(t, fx, 4, 0, vfs.NFSLike(), localDisk(),
		core.Options{CollectiveRead: true, IOTuner: loaded})
	if !bytes.Equal(seqOut, second) {
		t.Fatal("exploiting run diverges from the oracle")
	}
}
