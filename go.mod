module parblast

go 1.22
