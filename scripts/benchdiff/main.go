// Command benchdiff is the perf-regression gate for the kernel-benchmark
// trajectory: it compares a new BENCH_N.json against its predecessor and
// fails when an allocation count regressed. Allocations per op are exact
// and machine-independent (unlike ns/op, which the gate deliberately
// ignores — CI machines vary), so any increase is a real regression
// introduced by code, not noise.
//
// Usage:
//
//	benchdiff -old BENCH_1.json -new BENCH_2.json
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"parblast/internal/blast"
)

type benchDoc struct {
	Suite   string                    `json:"suite"`
	Results []blast.KernelBenchResult `json:"results"`
}

func load(path string) (benchDoc, error) {
	var doc benchDoc
	data, err := os.ReadFile(path)
	if err != nil {
		return doc, err
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		return doc, fmt.Errorf("%s: %w", path, err)
	}
	if len(doc.Results) == 0 {
		return doc, fmt.Errorf("%s: no benchmark results", path)
	}
	return doc, nil
}

func main() {
	oldPath := flag.String("old", "", "predecessor benchmark JSON")
	newPath := flag.String("new", "", "new benchmark JSON")
	flag.Parse()
	if *oldPath == "" || *newPath == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -old and -new are required")
		os.Exit(2)
	}
	oldDoc, err := load(*oldPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	newDoc, err := load(*newPath)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchdiff:", err)
		os.Exit(1)
	}
	oldBy := make(map[string]blast.KernelBenchResult, len(oldDoc.Results))
	for _, r := range oldDoc.Results {
		oldBy[r.Name] = r
	}
	failed := false
	for _, nr := range newDoc.Results {
		or, ok := oldBy[nr.Name]
		if !ok {
			fmt.Printf("%-24s new benchmark (%d allocs/op), no baseline\n", nr.Name, nr.AllocsPerOp)
			continue
		}
		verdict := "ok"
		if nr.AllocsPerOp > or.AllocsPerOp {
			verdict = "REGRESSED"
			failed = true
		}
		fmt.Printf("%-24s allocs/op %6d -> %6d  %s\n", nr.Name, or.AllocsPerOp, nr.AllocsPerOp, verdict)
	}
	if failed {
		fmt.Fprintf(os.Stderr, "benchdiff: allocs/op regressed vs %s\n", *oldPath)
		os.Exit(1)
	}
}
