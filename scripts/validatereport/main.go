// Command validatereport is the CI gate for telemetry artifacts: it parses
// a run report produced by `parblast -report` and (optionally) a Chrome
// trace produced by `-trace-out`, and fails loudly when either is not the
// document the tooling expects — wrong kind/version, missing metrics
// layers, or a trace Perfetto would refuse.
//
// Usage:
//
//	validatereport -run run.json [-trace trace.json] [-hints hints.json]
//	               [-latency] [-latency-second other.json]
//	validatereport -sla suite.json
//
// -latency additionally gates the per-query latency block: the summary must
// carry exact percentiles (count > 0, p50 ≤ p95 ≤ p99 ≤ max, all finite and
// non-negative). With -latency-second, the block must be byte-identical to
// the one in a second artifact from a repeated run — the determinism check.
//
// -sla gates a benchsuite suite artifact's serving-mode experiment: every
// row must carry a well-formed admission block (arrivals = admitted + shed)
// and monotone latency percentiles, the rate sweep's p99 must be
// non-decreasing per engine (the Lindley-recursion gate), and at least one
// saturation row must have shed work.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"math"
	"os"

	"parblast/internal/metrics"
	"parblast/internal/mpiio"
	"parblast/internal/report"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "validatereport: "+format+"\n", args...)
	os.Exit(1)
}

func parseRunFile(path string) report.Run {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	r, err := report.ParseRun(data)
	if err != nil {
		fail("%s: %v", path, err)
	}
	return r
}

func validateRun(path string) report.Run {
	r := parseRunFile(path)
	if r.Summary.Wall <= 0 {
		fail("%s: wall time %g is not positive", path, r.Summary.Wall)
	}
	if len(r.Ranks) == 0 || r.CriticalPath == nil {
		fail("%s: missing per-rank breakdown or critical-path attribution", path)
	}
	for _, layer := range []string{"mpi.", "vfs.", "mpiio.", "blast.", "engine."} {
		if !r.Metrics.HasPrefix(layer) {
			fail("%s: no metrics from layer %q", path, layer)
		}
	}
	validateMetricsOrder(path, r.Metrics)
	fmt.Printf("%s: ok (%s on %s, %d ranks, %d metric series)\n",
		path, r.Info.Engine, r.Info.Platform, len(r.Ranks), len(r.Metrics.Counters)+len(r.Metrics.Gauges)+len(r.Metrics.Histograms))
	return r
}

// validateLatency gates the per-query latency block: present, populated,
// monotone percentiles, all finite and non-negative.
func validateLatency(path string, r report.Run) {
	ls := r.Summary.QueryLatency
	if ls == nil {
		fail("%s: summary has no query_latency block (run with per-query accounting?)", path)
	}
	if ls.Count <= 0 {
		fail("%s: query_latency count %d is not positive", path, ls.Count)
	}
	for _, q := range []struct {
		name string
		v    float64
	}{{"p50_s", ls.P50}, {"p95_s", ls.P95}, {"p99_s", ls.P99}, {"max_s", ls.Max}} {
		if math.IsNaN(q.v) || math.IsInf(q.v, 0) || q.v < 0 {
			fail("%s: query_latency %s = %g is not a finite non-negative duration", path, q.name, q.v)
		}
	}
	if !(ls.P50 <= ls.P95 && ls.P95 <= ls.P99 && ls.P99 <= ls.Max) {
		fail("%s: query_latency percentiles not monotone: p50=%g p95=%g p99=%g max=%g",
			path, ls.P50, ls.P95, ls.P99, ls.Max)
	}
	if r.ExactPath != nil {
		p := r.ExactPath
		if p.Finish <= 0 {
			fail("%s: exact_critical_path finish %g is not positive", path, p.Finish)
		}
		if got, want := p.Blame.Total(), p.Finish-p.Unexplained; math.Abs(got-want) > 1e-6 {
			fail("%s: exact_critical_path blame does not tile the path: total=%g want=%g", path, got, want)
		}
	}
	fmt.Printf("%s: latency ok (n=%d p50=%.3fs p95=%.3fs p99=%.3fs max=%.3fs)\n",
		path, ls.Count, ls.P50, ls.P95, ls.P99, ls.Max)
}

// validateLatencyDeterminism requires the second artifact's latency block to
// be byte-identical to the first's: same workload, same percentiles, bit for
// bit — the repeated-run determinism contract.
func validateLatencyDeterminism(path string, r report.Run, secondPath string) {
	second := parseRunFile(secondPath)
	if second.Summary.QueryLatency == nil {
		fail("%s: summary has no query_latency block", secondPath)
	}
	a, err := json.Marshal(r.Summary.QueryLatency)
	if err != nil {
		fail("%s: %v", path, err)
	}
	b, err := json.Marshal(second.Summary.QueryLatency)
	if err != nil {
		fail("%s: %v", secondPath, err)
	}
	if string(a) != string(b) {
		fail("latency blocks differ between runs:\n  %s: %s\n  %s: %s", path, a, secondPath, b)
	}
	fmt.Printf("%s vs %s: latency deterministic\n", path, secondPath)
}

// validateMetricsOrder enforces the snapshot's determinism contract: every
// series list is sorted by (name, rank), so two runs of the same seed
// produce byte-identical artifacts.
func validateMetricsOrder(path string, s metrics.Snapshot) {
	checkSorted := func(kind string, n int, at func(int) (string, int)) {
		for i := 1; i < n; i++ {
			pn, pr := at(i - 1)
			cn, cr := at(i)
			if pn > cn || (pn == cn && pr >= cr) {
				fail("%s: %s series out of (name, rank) order: %q rank %d before %q rank %d",
					path, kind, pn, pr, cn, cr)
			}
		}
	}
	checkSorted("counter", len(s.Counters), func(i int) (string, int) {
		return s.Counters[i].Name, s.Counters[i].Rank
	})
	checkSorted("gauge", len(s.Gauges), func(i int) (string, int) {
		return s.Gauges[i].Name, s.Gauges[i].Rank
	})
	checkSorted("histogram", len(s.Histograms), func(i int) (string, int) {
		return s.Histograms[i].Name, s.Histograms[i].Rank
	})
	checkSorted("distribution", len(s.Distributions), func(i int) (string, int) {
		return s.Distributions[i].Name, s.Distributions[i].Rank
	})
}

// validateSLA gates the serving-mode experiment of a suite artifact: a
// well-formed admission block and monotone percentiles on every row,
// per-engine non-decreasing p99 along the rate sweep, and a present
// saturation row (shed > 0).
func validateSLA(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	s, err := report.ParseSuite(data)
	if err != nil {
		fail("%s: %v", path, err)
	}
	var rows []report.SuiteRow
	for _, e := range s.Experiments {
		if e.Name == "sla" {
			rows = e.Rows
		}
	}
	if len(rows) == 0 {
		fail("%s: no sla experiment in suite %q", path, s.Suite)
	}
	shedRows := 0
	lastP99 := make(map[string]float64)
	for _, r := range rows {
		if r.SLA == nil {
			fail("%s: sla row %q has no admission block", path, r.Label)
		}
		a := r.SLA
		if a.Arrivals != a.Admitted+a.Shed {
			fail("%s: row %q: arrivals %d != admitted %d + shed %d",
				path, r.Label, a.Arrivals, a.Admitted, a.Shed)
		}
		if a.Saturated != (a.Shed > 0) {
			fail("%s: row %q: saturated=%v inconsistent with shed=%d", path, r.Label, a.Saturated, a.Shed)
		}
		if a.Shed > 0 {
			shedRows++
		}
		ls := r.Summary.QueryLatency
		if ls == nil || ls.Count <= 0 {
			fail("%s: row %q has no populated query_latency block", path, r.Label)
		}
		if !(ls.P50 <= ls.P95 && ls.P95 <= ls.P99 && ls.P99 <= ls.Max) {
			fail("%s: row %q: percentiles not monotone: p50=%g p95=%g p99=%g max=%g",
				path, r.Label, ls.P50, ls.P95, ls.P99, ls.Max)
		}
		if a.Sweep == "rate" {
			// benchsuite emits rate rows in increasing-rate order per engine;
			// queueing delay (hence p99) must not decrease along the sweep.
			// The epsilon absorbs float rounding in done−arrival when there is
			// no queueing at all and adjacent rates tie exactly.
			if prev, ok := lastP99[r.Engine]; ok && ls.P99 < prev-1e-9 {
				fail("%s: engine %s: p99 decreased along the rate sweep (%g after %g at rate %g)",
					path, r.Engine, ls.P99, prev, a.ArrivalRate)
			}
			lastP99[r.Engine] = ls.P99
		}
	}
	if shedRows == 0 {
		fail("%s: no saturation row shed anything — the admission-cap gate never engaged", path)
	}
	fmt.Printf("%s: sla ok (%d rows, %d engines in rate sweep, %d saturated)\n",
		path, len(rows), len(lastP99), shedRows)
}

func validateTrace(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
			ID   string `json:"id"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		fail("%s: %v", path, err)
	}
	if len(doc.TraceEvents) == 0 {
		fail("%s: no trace events", path)
	}
	spans, flowStarts, flowEnds := 0, 0, 0
	starts := make(map[string]bool)
	for _, e := range doc.TraceEvents {
		switch e.Ph {
		case "X":
			spans++
		case "s":
			flowStarts++
			starts[e.ID] = true
		}
	}
	// Every flow finish must pair with a start under the same id — a dangling
	// "f" is an arrow Perfetto cannot draw.
	for _, e := range doc.TraceEvents {
		if e.Ph == "f" {
			flowEnds++
			if !starts[e.ID] {
				fail("%s: flow finish id %q has no matching start", path, e.ID)
			}
		}
	}
	if spans == 0 {
		fail("%s: no complete ('X') span events", path)
	}
	if flowStarts != flowEnds {
		fail("%s: unbalanced flow events: %d starts, %d finishes", path, flowStarts, flowEnds)
	}
	fmt.Printf("%s: ok (%d events, %d spans, %d flows)\n", path, len(doc.TraceEvents), spans, flowStarts)
}

// validateHints parses a learned-hints artifact (parblast -io-tune,
// benchsuite -hints-out) through the same versioned parser the tools load
// it with: kind, version, strictly key-sorted entries, known strategies,
// non-negative numerics.
func validateHints(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	a, err := mpiio.ParseHintsArtifact(data)
	if err != nil {
		fail("%s: %v", path, err)
	}
	fmt.Printf("%s: ok (%s v%d, %d learned keys)\n", path, a.Kind, a.Version, len(a.Entries))
}

func main() {
	runPath := flag.String("run", "", "run-report JSON to validate")
	tracePath := flag.String("trace", "", "Chrome trace JSON to validate")
	hintsPath := flag.String("hints", "", "learned-hints artifact JSON to validate")
	latency := flag.Bool("latency", false, "with -run: require the per-query latency block (present, monotone percentiles)")
	latencySecond := flag.String("latency-second", "", "with -latency: second run report whose latency block must match byte-for-byte")
	slaPath := flag.String("sla", "", "suite artifact JSON whose serving-mode (sla) experiment to gate")
	flag.Parse()
	if *runPath == "" && *tracePath == "" && *hintsPath == "" && *slaPath == "" {
		fail("nothing to validate: pass -run, -trace, -hints, and/or -sla")
	}
	if *latency && *runPath == "" {
		fail("-latency requires -run")
	}
	if *runPath != "" {
		r := validateRun(*runPath)
		if *latency {
			validateLatency(*runPath, r)
			if *latencySecond != "" {
				validateLatencyDeterminism(*runPath, r, *latencySecond)
			}
		}
	}
	if *tracePath != "" {
		validateTrace(*tracePath)
	}
	if *hintsPath != "" {
		validateHints(*hintsPath)
	}
	if *slaPath != "" {
		validateSLA(*slaPath)
	}
}
