// Command validatereport is the CI gate for telemetry artifacts: it parses
// a run report produced by `parblast -report` and (optionally) a Chrome
// trace produced by `-trace-out`, and fails loudly when either is not the
// document the tooling expects — wrong kind/version, missing metrics
// layers, or a trace Perfetto would refuse.
//
// Usage:
//
//	validatereport -run run.json [-trace trace.json] [-hints hints.json]
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"parblast/internal/metrics"
	"parblast/internal/mpiio"
	"parblast/internal/report"
)

func fail(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "validatereport: "+format+"\n", args...)
	os.Exit(1)
}

func validateRun(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	r, err := report.ParseRun(data)
	if err != nil {
		fail("%s: %v", path, err)
	}
	if r.Summary.Wall <= 0 {
		fail("%s: wall time %g is not positive", path, r.Summary.Wall)
	}
	if len(r.Ranks) == 0 || r.CriticalPath == nil {
		fail("%s: missing per-rank breakdown or critical-path attribution", path)
	}
	for _, layer := range []string{"mpi.", "vfs.", "mpiio.", "blast.", "engine."} {
		if !r.Metrics.HasPrefix(layer) {
			fail("%s: no metrics from layer %q", path, layer)
		}
	}
	validateMetricsOrder(path, r.Metrics)
	fmt.Printf("%s: ok (%s on %s, %d ranks, %d metric series)\n",
		path, r.Info.Engine, r.Info.Platform, len(r.Ranks), len(r.Metrics.Counters)+len(r.Metrics.Gauges)+len(r.Metrics.Histograms))
}

// validateMetricsOrder enforces the snapshot's determinism contract: every
// series list is sorted by (name, rank), so two runs of the same seed
// produce byte-identical artifacts.
func validateMetricsOrder(path string, s metrics.Snapshot) {
	checkSorted := func(kind string, n int, at func(int) (string, int)) {
		for i := 1; i < n; i++ {
			pn, pr := at(i - 1)
			cn, cr := at(i)
			if pn > cn || (pn == cn && pr >= cr) {
				fail("%s: %s series out of (name, rank) order: %q rank %d before %q rank %d",
					path, kind, pn, pr, cn, cr)
			}
		}
	}
	checkSorted("counter", len(s.Counters), func(i int) (string, int) {
		return s.Counters[i].Name, s.Counters[i].Rank
	})
	checkSorted("gauge", len(s.Gauges), func(i int) (string, int) {
		return s.Gauges[i].Name, s.Gauges[i].Rank
	})
	checkSorted("histogram", len(s.Histograms), func(i int) (string, int) {
		return s.Histograms[i].Name, s.Histograms[i].Rank
	})
}

func validateTrace(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	var doc struct {
		TraceEvents []struct {
			Name string `json:"name"`
			Ph   string `json:"ph"`
		} `json:"traceEvents"`
	}
	if err := json.Unmarshal(data, &doc); err != nil {
		fail("%s: %v", path, err)
	}
	if len(doc.TraceEvents) == 0 {
		fail("%s: no trace events", path)
	}
	spans := 0
	for _, e := range doc.TraceEvents {
		if e.Ph == "X" {
			spans++
		}
	}
	if spans == 0 {
		fail("%s: no complete ('X') span events", path)
	}
	fmt.Printf("%s: ok (%d events, %d spans)\n", path, len(doc.TraceEvents), spans)
}

// validateHints parses a learned-hints artifact (parblast -io-tune,
// benchsuite -hints-out) through the same versioned parser the tools load
// it with: kind, version, strictly key-sorted entries, known strategies,
// non-negative numerics.
func validateHints(path string) {
	data, err := os.ReadFile(path)
	if err != nil {
		fail("%v", err)
	}
	a, err := mpiio.ParseHintsArtifact(data)
	if err != nil {
		fail("%s: %v", path, err)
	}
	fmt.Printf("%s: ok (%s v%d, %d learned keys)\n", path, a.Kind, a.Version, len(a.Entries))
}

func main() {
	runPath := flag.String("run", "", "run-report JSON to validate")
	tracePath := flag.String("trace", "", "Chrome trace JSON to validate")
	hintsPath := flag.String("hints", "", "learned-hints artifact JSON to validate")
	flag.Parse()
	if *runPath == "" && *tracePath == "" && *hintsPath == "" {
		fail("nothing to validate: pass -run, -trace, and/or -hints")
	}
	if *runPath != "" {
		validateRun(*runPath)
	}
	if *tracePath != "" {
		validateTrace(*tracePath)
	}
	if *hintsPath != "" {
		validateHints(*hintsPath)
	}
}
