#!/usr/bin/env sh
# Full verification gate: build, vet, race-enabled tests, and a smoke run of
# the kernel benchmarks (one iteration — checks they still execute, not perf).
set -eu
cd "$(dirname "$0")/.."

go build ./...
go vet ./...
go test -race ./...
go test -run=- -bench=SearchFragment -benchtime=1x ./internal/blast
