#!/usr/bin/env sh
# Full verification gate: formatting, build, vet, race-enabled tests, a
# smoke run of the kernel benchmarks (one iteration — checks they still
# execute, not perf), and an examples build + quickstart smoke run.
set -eu
cd "$(dirname "$0")/.."

# gofmt produces no output when everything is formatted; any path printed
# is a failure.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: unformatted files:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go build ./...
go vet ./...
go test -race ./...
go test -run=- -bench=SearchFragment -benchtime=1x ./internal/blast
go run ./examples/quickstart >/dev/null
