#!/usr/bin/env sh
# Full verification gate: formatting, build, vet, race-enabled tests, a
# smoke run of the kernel benchmarks (one iteration — checks they still
# execute, not perf), an examples build + quickstart smoke run, and a
# telemetry smoke run (parblast -report/-trace-out + artifact validation).
set -eu
cd "$(dirname "$0")/.."

# `check.sh lint-fast` is the seconds-fast pre-push path: lint only the
# packages whose .go files changed since origin/main (falling back to
# HEAD when that ref does not exist), instead of the whole module.
if [ "${1:-}" = "lint-fast" ]; then
    exec go run ./cmd/parblastlint -changed
fi

# gofmt produces no output when everything is formatted; any path printed
# is a failure.
unformatted=$(gofmt -l .)
if [ -n "$unformatted" ]; then
    echo "gofmt: unformatted files:" >&2
    echo "$unformatted" >&2
    exit 1
fi

go build ./...
go vet ./...

# Invariant lint gate: the analyzers in internal/lint enforce the
# determinism contract (no wall clock, seeded randomness, no map-order
# leaks, matched MPI tags, clock-neutral telemetry). Fresh findings —
# anything not triaged into lint.baseline — fail the build.
go run ./cmd/parblastlint ./...

# The experiments package runs whole simulated-cluster sweeps per test
# and sits near go test's default 10m per-package limit under -race;
# give it explicit headroom rather than flaking on loaded machines.
go test -race -timeout 20m ./...

# Fuzz smoke: a few seconds per codec hardening target. Finds shallow
# panics in the wire codec and artifact reader without a long campaign.
go test -run=- -fuzz=FuzzWireQueries -fuzztime=5s ./internal/engine
go test -run=- -fuzz=FuzzReportParse -fuzztime=5s ./internal/report
go test -run=- -fuzz=FuzzFlowGraph -fuzztime=5s ./internal/trace
go test -run=- -bench=SearchFragment -benchtime=1x ./internal/blast
go run ./examples/quickstart >/dev/null

# Telemetry smoke: a tiny end-to-end run must produce a parseable run
# report (metrics from all five layers) and a loadable Chrome trace.
tmp=$(mktemp -d)
trap 'rm -rf "$tmp"' EXIT
go run ./cmd/makedb -o "$tmp/db.fasta" -seqs 60 -meanlen 120 -seed 7
go run ./cmd/makedb -o "$tmp/q.fasta" -seqs 6 -meanlen 80 -seed 3 -prefix qry
go run ./cmd/parblast -db "$tmp/db.fasta" -query "$tmp/q.fasta" \
    -engine pio -procs 4 -out "$tmp/results.txt" \
    -report "$tmp/run.json" -trace-out "$tmp/trace.json" >/dev/null
go run ./scripts/validatereport -run "$tmp/run.json" -trace "$tmp/trace.json"

# Latency/flow smoke: with -trace-flows the report carries the per-query
# percentile block and the exact critical path, the Chrome trace carries
# balanced flow-event pairs, and a repeated run reproduces the latency
# block byte for byte (the determinism gate).
go run ./cmd/parblast -db "$tmp/db.fasta" -query "$tmp/q.fasta" \
    -engine pio -procs 4 -batch 2 -out "$tmp/results_lat.txt" -trace-flows \
    -report "$tmp/lat1.json" -trace-out "$tmp/flows.json" >/dev/null
go run ./cmd/parblast -db "$tmp/db.fasta" -query "$tmp/q.fasta" \
    -engine pio -procs 4 -batch 2 -out "$tmp/results_lat2.txt" -trace-flows \
    -report "$tmp/lat2.json" >/dev/null
go run ./scripts/validatereport -run "$tmp/lat1.json" -trace "$tmp/flows.json" \
    -latency -latency-second "$tmp/lat2.json"

# Read-path smoke: the collective-read / prefetch experiment row must run
# end to end on a scaled-down workload.
go run ./cmd/benchsuite -exp readpath -dbseqs 120 -querybytes 1500 >/dev/null

# Merge-scalability smoke: the flat-vs-tree merge sweep must run end to end
# at small rank counts with byte-identical layouts across every fan-out.
go run ./cmd/benchsuite -exp mergescale -mergescale-ranks 8,16 >/dev/null

# Latency-experiment smoke: the ranks × protocols sweep must run end to
# end on a scaled-down workload.
go run ./cmd/benchsuite -exp latency -dbseqs 120 >/dev/null

# Serving-mode smoke: a streamed run over a warm cluster must be
# byte-identical to the one-shot run over the same queries — both engines.
go run ./cmd/parblast -db "$tmp/db.fasta" -query "$tmp/q.fasta" \
    -engine pio -procs 4 -serve -arrival-rate 2 -arrival-seed 9 \
    -out "$tmp/served_pio.txt" >/dev/null
cmp "$tmp/results.txt" "$tmp/served_pio.txt"
go run ./cmd/parblast -db "$tmp/db.fasta" -query "$tmp/q.fasta" \
    -engine mpi -procs 4 -out "$tmp/results_mpi.txt" >/dev/null
go run ./cmd/parblast -db "$tmp/db.fasta" -query "$tmp/q.fasta" \
    -engine mpi -procs 4 -serve -arrival-rate 2 -arrival-seed 9 \
    -out "$tmp/served_mpi.txt" >/dev/null
cmp "$tmp/results_mpi.txt" "$tmp/served_mpi.txt"

# SLA smoke: the serving sweep (both engines, rate/batch/shed) must run end
# to end on a scaled-down workload — every row byte-identity-gated inside
# the experiment — and its suite artifact must pass the -sla gate (monotone
# percentiles, non-decreasing p99 along the rate sweep, a saturation row).
go run ./cmd/benchsuite -exp sla -dbseqs 120 -report "$tmp/sla.json" >/dev/null
go run ./scripts/validatereport -sla "$tmp/sla.json"

# I/O auto-tuning smoke: the tuned-vs-fixed study enforces its own gate
# (tuned never regresses the fixed heuristics on any fs profile, strictly
# beats them somewhere, byte-identity everywhere) and its learned-hints
# artifact must validate and round-trip through parblast -io-hints.
go run ./cmd/benchsuite -exp iotune -hints-out "$tmp/hints.json" >/dev/null
go run ./scripts/validatereport -hints "$tmp/hints.json"
go run ./cmd/parblast -db "$tmp/db.fasta" -query "$tmp/q.fasta" \
    -engine pio -procs 4 -collective-read -io-tune "$tmp/hints2.json" \
    -out "$tmp/results_tune.txt" >/dev/null
go run ./scripts/validatereport -hints "$tmp/hints2.json"
go run ./cmd/parblast -db "$tmp/db.fasta" -query "$tmp/q.fasta" \
    -engine pio -procs 4 -collective-read -io-hints "$tmp/hints2.json" \
    -out "$tmp/results_hinted.txt" >/dev/null
cmp "$tmp/results_tune.txt" "$tmp/results_hinted.txt"

# Perf-trajectory guard: the newest checked-in kernel benchmark record must
# not regress allocation counts against its predecessor.
go run ./scripts/benchdiff -old BENCH_1.json -new BENCH_2.json
