// Command formatdb converts a FASTA database into the formatted volume
// files (index/header/sequence) the search engines consume — the
// reproduction's equivalent of NCBI formatdb. With -fragments it also runs
// the mpiformatdb-style physical pre-partitioning the baseline engine
// requires.
//
// Usage:
//
//	formatdb -in nr.fasta -db nr [-title "GenBank nr"] [-volsize N] [-fragments N] [-outdir dir]
//
// Files are materialized under -outdir on the real filesystem.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"parblast/internal/fasta"
	"parblast/internal/formatdb"
	"parblast/internal/seq"
	"parblast/internal/vfs"
)

func main() {
	in := flag.String("in", "", "input FASTA file")
	db := flag.String("db", "", "database base name")
	title := flag.String("title", "", "database title (default: base name)")
	volSize := flag.Int64("volsize", 0, "maximum residues per volume (0 = single volume)")
	fragments := flag.Int("fragments", 0, "also produce N physical fragments (mpiformatdb mode)")
	outDir := flag.String("outdir", ".", "directory to write database files into")
	flag.Parse()

	if *in == "" || *db == "" {
		fmt.Fprintln(os.Stderr, "formatdb: -in and -db are required")
		flag.Usage()
		os.Exit(2)
	}
	seqs, err := fasta.ReadFile(*in, nil)
	if err != nil {
		fmt.Fprintln(os.Stderr, "formatdb:", err)
		os.Exit(1)
	}
	if len(seqs) == 0 {
		fmt.Fprintln(os.Stderr, "formatdb: no sequences in input")
		os.Exit(1)
	}
	kind := seqs[0].Alpha.Kind()

	// Format into an in-memory staging FS, then materialize the files.
	staging := vfs.MustNew(vfs.RAMDisk())
	meta, err := formatdb.Format(staging, *db, seqs, formatdb.Config{
		Title:             *title,
		Kind:              kind,
		VolumeMaxResidues: *volSize,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "formatdb:", err)
		os.Exit(1)
	}
	if *fragments > 0 {
		if _, err := meta.PhysicalFragment(staging, *fragments); err != nil {
			fmt.Fprintln(os.Stderr, "formatdb:", err)
			os.Exit(1)
		}
	}
	if err := os.MkdirAll(*outDir, 0o755); err != nil {
		fmt.Fprintln(os.Stderr, "formatdb:", err)
		os.Exit(1)
	}
	var files int
	var bytes int64
	for _, path := range staging.List() {
		data, err := staging.ReadFile(path)
		if err != nil {
			fmt.Fprintln(os.Stderr, "formatdb:", err)
			os.Exit(1)
		}
		dst := filepath.Join(*outDir, path)
		if err := os.WriteFile(dst, data, 0o644); err != nil {
			fmt.Fprintln(os.Stderr, "formatdb:", err)
			os.Exit(1)
		}
		files++
		bytes += int64(len(data))
	}
	fmt.Printf("formatdb: %s — %d sequences, %d residues, %d volume(s), kind=%s\n",
		meta.Base, meta.NumSeqs, meta.TotalResidues, len(meta.Volumes), seq.Kind(kind))
	fmt.Printf("formatdb: wrote %d files (%d bytes) under %s\n", files, bytes, *outDir)
}
