// Command parblast runs a parallel BLAST search on the simulated cluster:
// it loads a FASTA database and query set from the real filesystem, formats
// the database, executes the chosen engine, writes the report, and prints
// the virtual-time phase breakdown.
//
// Usage:
//
//	parblast -db nr.fasta -query queries.fasta -out results.txt \
//	         [-engine pio|mpi|seq] [-procs 32] [-platform altix|blade|ideal] \
//	         [-fragments N] [-early-prune] [-independent-output] \
//	         [-collective-read] [-prefetch N] [-dynamic] \
//	         [-serve -arrival-rate R [-arrival-burst B] [-admit-cap N]] \
//	         [-report run.json] [-trace-out trace.json] [-timeline]
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"

	"parblast"
	"parblast/internal/fasta"
	runreport "parblast/internal/report"
)

func main() {
	dbPath := flag.String("db", "", "database FASTA file")
	dbDir := flag.String("dbdir", "", "directory of formatted database files (from cmd/formatdb); use with -dbname")
	dbName := flag.String("dbname", "db", "database base name inside -dbdir")
	queryPath := flag.String("query", "", "query FASTA file")
	outPath := flag.String("out", "results.txt", "output report path")
	engineName := flag.String("engine", "pio", "engine: pio, mpi, or seq")
	procs := flag.Int("procs", 8, "number of simulated MPI processes")
	platformName := flag.String("platform", "altix", "cluster platform: altix, blade, or ideal")
	fragments := flag.Int("fragments", 0, "partition granularity (0 = one fragment per worker)")
	earlyPrune := flag.Bool("early-prune", false, "pioBLAST: early score communication (§5)")
	independent := flag.Bool("independent-output", false, "pioBLAST: independent instead of collective writes (ablation)")
	title := flag.String("title", "database", "database title for report headers")
	outfmt := flag.String("outfmt", "pairwise", "report format: pairwise or tabular")
	filter := flag.Bool("filter", false, "mask low-complexity query regions for seeding (-F)")
	dynamic := flag.Bool("dynamic", false, "pioBLAST: greedy run-time fragment assignment (§5)")
	collectiveRead := flag.Bool("collective-read", false, "pioBLAST: two-phase collective input reads (§3; static assignment only)")
	prefetch := flag.Int("prefetch", 0, "pioBLAST: partitions to prefetch asynchronously while searching (0 = synchronous reads)")
	batch := flag.Int("batch", 0, "pioBLAST: queries per collective write (§5 query batching)")
	treeMerge := flag.Bool("tree-merge", false, "hierarchical tree merge of result metadata (both engines): group pre-merges on worker clocks, one bundle per subtree to the master")
	mergeFanout := flag.Int("merge-fanout", 0, "tree-merge fan-out (children per node, ≥2; 0 = default 4)")
	memBudget := flag.Int64("membudget", 0, "pioBLAST: adaptive batching memory budget in bytes (§5)")
	searchThreads := flag.Int("search-threads", 0, "intra-rank search worker goroutines (0 = GOMAXPROCS, 1 = sequential); output is identical for every value")
	timeline := flag.Bool("timeline", false, "print a per-rank phase timeline after the run")
	ioStrategy := flag.String("io-strategy", "", "pioBLAST: collective-read strategy: two-phase, list-io, or independent (default two-phase)")
	ioHints := flag.String("io-hints", "", "pioBLAST: load a learned-hints artifact (from -io-tune) and exploit it")
	ioTune := flag.String("io-tune", "", "pioBLAST: run with the I/O auto-tuner and write the learned-hints artifact to this path")
	crash := flag.String("crash", "", "inject a worker crash as RANK@TIME (e.g. 3@0.2); arms failure recovery")
	serve := flag.Bool("serve", false, "streaming mode: keep the cluster warm and admit queries as an open-loop arrival stream (output byte-identical to a one-shot run over the admitted queries)")
	arrivalRate := flag.Float64("arrival-rate", 1, "with -serve: mean batch arrivals per virtual second")
	arrivalBurst := flag.Float64("arrival-burst", 0, "with -serve: MMPP burst factor (>1 alternates calm and bursty phases; 0 or 1 = plain Poisson)")
	admitCap := flag.Int("admit-cap", 0, "with -serve: admission queue bound; batches arriving beyond it are deterministically shed (0 = unbounded)")
	arrivalBatch := flag.Int("arrival-batch", 1, "with -serve: mean queries per arrival batch")
	arrivalDist := flag.String("arrival-dist", "", "with -serve: batch-size distribution: fixed, uniform, or geometric (default fixed)")
	arrivalSeed := flag.Int64("arrival-seed", 1, "with -serve: arrival-stream RNG seed")
	reportPath := flag.String("report", "", "write a machine-readable JSON run report to this path")
	traceOut := flag.String("trace-out", "", "write a Chrome trace-event JSON file (Perfetto-loadable) to this path")
	traceFlows := flag.Bool("trace-flows", false, "record causal message flows: Perfetto flow arrows in -trace-out and an exact wait-for critical path in -report")
	flag.Parse()

	if (*dbPath == "" && *dbDir == "") || *queryPath == "" {
		fmt.Fprintln(os.Stderr, "parblast: -db (or -dbdir) and -query are required")
		flag.Usage()
		os.Exit(2)
	}
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "parblast:", err)
		os.Exit(1)
	}

	var eng parblast.Engine
	switch *engineName {
	case "pio":
		eng = parblast.EnginePioBLAST
	case "mpi":
		eng = parblast.EngineMPIBlast
	case "seq":
		eng = parblast.EngineSequential
	default:
		fail(fmt.Errorf("unknown engine %q", *engineName))
	}
	var platform parblast.Platform
	switch *platformName {
	case "altix":
		platform = parblast.PlatformAltix
	case "blade":
		platform = parblast.PlatformBladeCluster
	case "ideal":
		platform = parblast.PlatformIdeal
	default:
		fail(fmt.Errorf("unknown platform %q", *platformName))
	}

	queries, err := fasta.ReadFile(*queryPath, nil)
	if err != nil {
		fail(err)
	}
	if len(queries) == 0 {
		fail(fmt.Errorf("empty query set"))
	}

	cluster, err := parblast.NewCluster(*procs, platform)
	if err != nil {
		fail(err)
	}
	var collector *parblast.TraceCollector
	if *timeline || *traceOut != "" || *traceFlows {
		collector = cluster.Trace()
	}
	if *traceFlows {
		collector = cluster.TraceFlows()
	}
	var registry *parblast.MetricsRegistry
	if *reportPath != "" {
		registry = cluster.Metrics()
	}
	var db *parblast.DB
	if *dbDir != "" {
		// Import a pre-formatted database (cmd/formatdb output) onto the
		// cluster's shared file system — no re-formatting.
		entries, err := os.ReadDir(*dbDir)
		if err != nil {
			fail(err)
		}
		for _, e := range entries {
			if e.IsDir() {
				continue
			}
			data, err := os.ReadFile(filepath.Join(*dbDir, e.Name()))
			if err != nil {
				fail(err)
			}
			cluster.SharedFS().WriteFile(e.Name(), data)
		}
		db, err = cluster.OpenDB(*dbName)
		if err != nil {
			fail(err)
		}
	} else {
		dbSeqs, err := fasta.ReadFile(*dbPath, nil)
		if err != nil {
			fail(err)
		}
		if len(dbSeqs) == 0 {
			fail(fmt.Errorf("empty database"))
		}
		db, err = cluster.FormatDB("db", dbSeqs, *title)
		if err != nil {
			fail(err)
		}
	}
	if eng == parblast.EngineMPIBlast {
		n := *fragments
		if n == 0 {
			n = *procs - 1
		}
		if err := cluster.PrepareFragments("db", n); err != nil {
			fail(err)
		}
	}
	strategy, err := parblast.ParseIOStrategy(*ioStrategy)
	if err != nil {
		fail(err)
	}
	// -io-hints loads a learned artifact to exploit; -io-tune attaches a
	// (possibly pre-seeded) tuner and persists what it learned after the
	// run. Both may be given: known keys exploit, new keys explore.
	var tuner *parblast.IOTuner
	if *ioHints != "" {
		data, err := os.ReadFile(*ioHints)
		if err != nil {
			fail(err)
		}
		if tuner, err = parblast.LoadIOTuner(data); err != nil {
			fail(err)
		}
	} else if *ioTune != "" {
		tuner = parblast.NewIOTuner()
	}
	search := parblast.Search{
		DB:        db,
		Queries:   queries,
		Output:    "results.out",
		Fragments: *fragments,
		Pio: parblast.PioOptions{
			EarlyPrune:        *earlyPrune,
			IndependentOutput: *independent,
			DynamicAssignment: *dynamic,
			CollectiveRead:    *collectiveRead,
			PrefetchDepth:     *prefetch,
			QueryBatch:        *batch,
			MemoryBudgetBytes: *memBudget,
			TreeMerge:         *treeMerge,
			MergeFanout:       *mergeFanout,
			IOHints:           parblast.IOHints{ReadStrategy: strategy},
			IOTuner:           tuner,
		},
		Mpi: parblast.MpiOptions{
			TreeMerge:   *treeMerge,
			MergeFanout: *mergeFanout,
		},
	}
	if db.Kind == parblast.DNA {
		search.Options = parblast.DefaultDNAOptions()
	} else {
		search.Options = parblast.DefaultProteinOptions()
	}
	search.Options.FilterLowComplexity = *filter
	search.Options.SearchThreads = *searchThreads
	if *crash != "" {
		var rank int
		var at float64
		if _, err := fmt.Sscanf(*crash, "%d@%f", &rank, &at); err != nil {
			fail(fmt.Errorf("bad -crash %q (want RANK@TIME, e.g. 3@0.2): %w", *crash, err))
		}
		search.Faults = []parblast.Fault{{Rank: rank, At: at, Kind: parblast.FaultCrash}}
	}
	switch *outfmt {
	case "pairwise":
	case "tabular":
		search.Options.OutFormat = parblast.FormatTabular
	default:
		fail(fmt.Errorf("unknown output format %q", *outfmt))
	}
	var res parblast.Result
	var serveStats parblast.ServeStats
	if *serve {
		batches, err := parblast.Arrivals(queries, parblast.ArrivalConfig{
			Rate:      *arrivalRate,
			Burst:     *arrivalBurst,
			BatchMean: *arrivalBatch,
			BatchDist: *arrivalDist,
			Seed:      *arrivalSeed,
		})
		if err != nil {
			fail(err)
		}
		res, serveStats, err = cluster.Serve(eng, search, batches, *admitCap)
		if err != nil {
			fail(err)
		}
	} else {
		var err error
		res, err = cluster.Run(eng, search)
		if err != nil {
			fail(err)
		}
	}
	report, err := cluster.ReadOutput("results.out")
	if err != nil {
		fail(err)
	}
	if err := os.WriteFile(*outPath, report, 0o644); err != nil {
		fail(err)
	}

	fmt.Printf("engine=%s platform=%s procs=%d queries=%d db=%d seqs/%d residues\n",
		eng, platform, *procs, len(queries), db.NumSeqs, db.TotalResidues)
	if eng != parblast.EngineSequential {
		b := res.Phase
		fmt.Printf("virtual time:  copy=%.2fs input=%.2fs search=%.2fs output=%.2fs other=%.2fs\n",
			b.Copy, b.Input, b.Search, b.Output, b.Other)
		fmt.Printf("total=%.2fs  search share=%.1f%%\n", res.Wall, res.SearchFraction()*100)
		if *serve {
			fmt.Printf("serving:       arrivals=%d admitted=%d shed=%d (rate=%g/s burst=%g cap=%d)\n",
				serveStats.Arrivals, serveStats.Admitted, serveStats.Shed,
				*arrivalRate, *arrivalBurst, *admitCap)
		}
		if ls := runreport.LatencySummaryOf(res.QueryLatencies); ls != nil {
			fmt.Printf("query latency: n=%d p50=%.3fs p95=%.3fs p99=%.3fs max=%.3fs\n",
				ls.Count, ls.P50, ls.P95, ls.P99, ls.Max)
		}
	}
	fmt.Printf("report: %d bytes → %s\n", len(report), *outPath)
	if *ioTune != "" {
		artifact := tuner.Finalize()
		data, err := artifact.Encode()
		if err != nil {
			fail(err)
		}
		if err := os.WriteFile(*ioTune, data, 0o644); err != nil {
			fail(err)
		}
		fmt.Printf("learned I/O hints: %d keys → %s\n", len(artifact.Entries), *ioTune)
	}
	if *reportPath != "" {
		info := runreport.RunInfo{
			Engine:     eng.String(),
			Platform:   platform.String(),
			Procs:      *procs,
			Queries:    len(queries),
			DBSeqs:     db.NumSeqs,
			DBResidues: db.TotalResidues,
		}
		if *serve {
			info.Extra = map[string]string{
				"serve":        "true",
				"arrival_rate": fmt.Sprintf("%g", *arrivalRate),
				"arrivals":     fmt.Sprintf("%d", serveStats.Arrivals),
				"admitted":     fmt.Sprintf("%d", serveStats.Admitted),
				"shed":         fmt.Sprintf("%d", serveStats.Shed),
			}
		}
		doc := runreport.Build(info, res, registry)
		if *traceFlows {
			doc.ExactPath = runreport.ExactCriticalPath(collector)
		}
		f, err := os.Create(*reportPath)
		if err != nil {
			fail(err)
		}
		if err := doc.WriteJSON(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("run report → %s\n", *reportPath)
	}
	if *traceOut != "" {
		f, err := os.Create(*traceOut)
		if err != nil {
			fail(err)
		}
		meta := map[string]string{
			"engine":   eng.String(),
			"platform": platform.String(),
			"procs":    fmt.Sprintf("%d", *procs),
		}
		// With a metrics registry attached, export histogram/distribution
		// series as Perfetto counter tracks alongside the rank timelines.
		var werr error
		if registry != nil {
			werr = collector.WriteChromeTraceMetrics(f, meta, registry.Snapshot())
		} else {
			werr = collector.WriteChromeTrace(f, meta)
		}
		if werr != nil {
			fail(werr)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("chrome trace → %s (load at ui.perfetto.dev)\n", *traceOut)
	}
	if collector != nil && *timeline {
		fmt.Println()
		collector.Render(os.Stdout, 100)
	}
}
