// Command faidx builds and uses random-access indexes over FASTA files,
// in the style of samtools faidx: with only a file argument it writes
// <file>.fai; with region arguments (name or name:from-to, 1-based
// inclusive) it prints the requested subsequences without scanning the
// file.
//
// Usage:
//
//	faidx big.fasta                    # build big.fasta.fai
//	faidx big.fasta seq12 seq99:40-120 # fetch records/ranges
package main

import (
	"fmt"
	"os"
	"strconv"
	"strings"

	"parblast/internal/fasta"
	"parblast/internal/seq"
)

func main() {
	if len(os.Args) < 2 {
		fmt.Fprintln(os.Stderr, "usage: faidx <file.fasta> [region ...]")
		os.Exit(2)
	}
	path := os.Args[1]
	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "faidx:", err)
		os.Exit(1)
	}

	f, err := os.Open(path)
	if err != nil {
		fail(err)
	}
	defer f.Close()

	faiPath := path + ".fai"
	var ix *fasta.Index
	if fai, err := os.Open(faiPath); err == nil {
		ix, err = fasta.ReadFai(fai)
		fai.Close()
		if err != nil {
			fail(fmt.Errorf("reading %s: %w", faiPath, err))
		}
	} else {
		ix, err = fasta.BuildIndex(f)
		if err != nil {
			fail(err)
		}
		out, err := os.Create(faiPath)
		if err != nil {
			fail(err)
		}
		if err := ix.WriteFai(out); err != nil {
			fail(err)
		}
		if err := out.Close(); err != nil {
			fail(err)
		}
		fmt.Fprintf(os.Stderr, "faidx: wrote %s (%d records)\n", faiPath, len(ix.Entries()))
	}

	for _, region := range os.Args[2:] {
		name, from, to, err := parseRegion(ix, region)
		if err != nil {
			fail(err)
		}
		letters, err := ix.Fetch(f, name, from, to)
		if err != nil {
			fail(err)
		}
		fmt.Printf(">%s:%d-%d\n%s\n", name, from+1, to, seq.FormatResidues(string(letters), 60))
	}
}

// parseRegion handles "name" (whole record) and "name:from-to" (1-based
// inclusive, as in samtools).
func parseRegion(ix *fasta.Index, region string) (name string, from, to int, err error) {
	name = region
	if i := strings.LastIndexByte(region, ':'); i >= 0 {
		rangePart := region[i+1:]
		if dash := strings.IndexByte(rangePart, '-'); dash >= 0 {
			a, errA := strconv.Atoi(rangePart[:dash])
			b, errB := strconv.Atoi(rangePart[dash+1:])
			if errA == nil && errB == nil {
				name = region[:i]
				if a < 1 || b < a {
					return "", 0, 0, fmt.Errorf("bad range %q", region)
				}
				return name, a - 1, b, nil
			}
		}
	}
	e, ok := ix.Lookup(name)
	if !ok {
		return "", 0, 0, fmt.Errorf("record %q not found", name)
	}
	return name, 0, e.Length, nil
}
