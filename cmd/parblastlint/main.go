// Command parblastlint runs the project's invariant-lint suite: a
// registry of typed static analyzers that mechanically enforce the
// simulator's determinism contract (no wall clock, seeded randomness
// only, no map-order leaks into output, matched MPI tag protocols,
// clock-neutral telemetry). See internal/lint and DESIGN.md §12.
//
// Usage:
//
//	parblastlint [-json] [-analyzers a,b] [-baseline file] [-write-baseline] [packages...]
//
// Packages default to ./... of the enclosing module. The exit status is 0
// when every finding is baselined (or there are none), 1 when fresh
// findings exist, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"parblast/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	analyzers := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	baselinePath := flag.String("baseline", "lint.baseline", "baseline file of triaged findings (relative to the module root)")
	writeBaseline := flag.Bool("write-baseline", false, "rewrite the baseline file with the current findings and exit 0")
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected, err := lint.ByName(*analyzers)
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader()
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	diags := lint.Run(loader, pkgs, selected)

	baseFile := *baselinePath
	if !os.IsPathSeparator(baseFile[0]) {
		baseFile = loader.ModuleDir + string(os.PathSeparator) + baseFile
	}
	if *writeBaseline {
		f, err := os.Create(baseFile)
		if err != nil {
			fatal(err)
		}
		if err := lint.WriteBaseline(f, diags); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "parblastlint: wrote %d finding(s) to %s\n", len(diags), baseFile)
		return
	}
	baseline, err := lint.LoadBaseline(baseFile)
	if err != nil {
		fatal(err)
	}
	fresh, baselined := baseline.Filter(diags)

	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, fresh); err != nil {
			fatal(err)
		}
	} else {
		lint.WriteText(os.Stdout, fresh)
	}
	if len(baselined) > 0 {
		fmt.Fprintf(os.Stderr, "parblastlint: %d baselined finding(s) suppressed\n", len(baselined))
	}
	if len(fresh) > 0 {
		fmt.Fprintf(os.Stderr, "parblastlint: %d fresh finding(s)\n", len(fresh))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "parblastlint:", err)
	os.Exit(2)
}
