// Command parblastlint runs the project's invariant-lint suite: a
// registry of typed static analyzers that mechanically enforce the
// simulator's determinism contract (no wall clock, seeded randomness
// only, no map-order leaks into output, matched MPI tag protocols,
// clock-neutral telemetry). See internal/lint and DESIGN.md §12.
//
// Usage:
//
//	parblastlint [-json] [-analyzers a,b] [-baseline file] [-write-baseline]
//	             [-changed] [-changed-ref ref] [packages...]
//
// Packages default to ./... of the enclosing module. With -changed, the
// package list is instead derived from git: the directories of every .go
// file modified since -changed-ref (default origin/main, falling back to
// HEAD when that ref does not exist), plus untracked .go files — the
// seconds-fast pre-push path wired up as `scripts/check.sh lint-fast`.
// The exit status is 0 when every finding is baselined (or there are
// none), 1 when fresh findings exist, 2 on usage or load errors.
package main

import (
	"flag"
	"fmt"
	"os"

	"parblast/internal/lint"
)

func main() {
	jsonOut := flag.Bool("json", false, "emit diagnostics as a JSON array")
	analyzers := flag.String("analyzers", "", "comma-separated analyzer subset (default: all)")
	baselinePath := flag.String("baseline", "lint.baseline", "baseline file of triaged findings (relative to the module root)")
	writeBaseline := flag.Bool("write-baseline", false, "rewrite the baseline file with the current findings and exit 0")
	list := flag.Bool("list", false, "list the registered analyzers and exit")
	changed := flag.Bool("changed", false, "lint only packages with .go files changed since -changed-ref")
	changedRef := flag.String("changed-ref", "origin/main", "git ref -changed diffs against (falls back to HEAD if missing)")
	flag.Parse()

	if *list {
		for _, a := range lint.All() {
			fmt.Printf("%-14s %s\n", a.Name, a.Doc)
		}
		return
	}

	selected, err := lint.ByName(*analyzers)
	if err != nil {
		fatal(err)
	}
	loader, err := lint.NewLoader()
	if err != nil {
		fatal(err)
	}
	patterns := flag.Args()
	if *changed {
		if len(patterns) != 0 {
			fatal(fmt.Errorf("-changed derives the package list from git; explicit packages conflict"))
		}
		var ref string
		patterns, ref, err = lint.ChangedPackages(loader.ModuleDir, *changedRef)
		if err != nil {
			fatal(err)
		}
		if len(patterns) == 0 {
			fmt.Fprintf(os.Stderr, "parblastlint: no .go files changed since %s\n", ref)
			return
		}
		fmt.Fprintf(os.Stderr, "parblastlint: linting %d package(s) changed since %s\n", len(patterns), ref)
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	pkgs, err := loader.Load(patterns...)
	if err != nil {
		fatal(err)
	}
	diags := lint.Run(loader, pkgs, selected)

	baseFile := *baselinePath
	if !os.IsPathSeparator(baseFile[0]) {
		baseFile = loader.ModuleDir + string(os.PathSeparator) + baseFile
	}
	if *writeBaseline {
		f, err := os.Create(baseFile)
		if err != nil {
			fatal(err)
		}
		if err := lint.WriteBaseline(f, diags); err != nil {
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
		fmt.Fprintf(os.Stderr, "parblastlint: wrote %d finding(s) to %s\n", len(diags), baseFile)
		return
	}
	baseline, err := lint.LoadBaseline(baseFile)
	if err != nil {
		fatal(err)
	}
	fresh, baselined := baseline.Filter(diags)

	if *jsonOut {
		if err := lint.WriteJSON(os.Stdout, fresh); err != nil {
			fatal(err)
		}
	} else {
		lint.WriteText(os.Stdout, fresh)
	}
	if len(baselined) > 0 {
		fmt.Fprintf(os.Stderr, "parblastlint: %d baselined finding(s) suppressed\n", len(baselined))
	}
	if len(fresh) > 0 {
		fmt.Fprintf(os.Stderr, "parblastlint: %d fresh finding(s)\n", len(fresh))
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintln(os.Stderr, "parblastlint:", err)
	os.Exit(2)
}
