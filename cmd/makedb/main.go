// Command makedb generates a synthetic FASTA sequence database with
// realistic residue frequencies and optional family redundancy — the
// workload generator behind the reproduction's GenBank nr/nt stand-ins.
//
// Usage:
//
//	makedb -o nr.fasta -seqs 600 -meanlen 300 -family 12 [-kind protein|dna] [-seed N]
package main

import (
	"flag"
	"fmt"
	"os"

	"parblast/internal/fasta"
	"parblast/internal/seq"
	"parblast/internal/workload"
)

func main() {
	out := flag.String("o", "synthetic.fasta", "output FASTA path")
	nSeqs := flag.Int("seqs", 600, "number of sequences")
	meanLen := flag.Int("meanlen", 300, "mean sequence length")
	family := flag.Int("family", 1, "family size (homologous-redundancy groups)")
	kindName := flag.String("kind", "protein", "molecule kind: protein or dna")
	seed := flag.Int64("seed", 7, "generator seed")
	prefix := flag.String("prefix", "syn", "sequence ID prefix")
	flag.Parse()

	kind := seq.Protein
	switch *kindName {
	case "protein":
	case "dna":
		kind = seq.DNA
	default:
		fmt.Fprintf(os.Stderr, "makedb: unknown kind %q\n", *kindName)
		os.Exit(2)
	}
	seqs, err := workload.SynthesizeDB(workload.DBConfig{
		Kind:       kind,
		NumSeqs:    *nSeqs,
		MeanLen:    *meanLen,
		Seed:       *seed,
		IDPrefix:   *prefix,
		FamilySize: *family,
	})
	if err != nil {
		fmt.Fprintln(os.Stderr, "makedb:", err)
		os.Exit(1)
	}
	if err := fasta.WriteFile(*out, seqs, 60); err != nil {
		fmt.Fprintln(os.Stderr, "makedb:", err)
		os.Exit(1)
	}
	total := workload.TotalResidues(seqs)
	fmt.Printf("makedb: wrote %d %s sequences (%d residues) to %s\n",
		len(seqs), kind, total, *out)
}
