// Command benchsuite regenerates the paper's evaluation: every table and
// figure of §4 plus the design-choice ablations, printed as rows of
// virtual-time phase breakdowns.
//
// Usage:
//
//	benchsuite [-exp all|fig1a|fig1b|table1|table2|fig3a|fig3b|fig4|ablations|hetero|faults]
//	           [-dbseqs N] [-family N] [-querybytes N]
//	benchsuite -kernelbench [-bench-out BENCH_1.json]
//
// Times are virtual seconds from the cluster simulation; see EXPERIMENTS.md
// for the paper-vs-measured comparison. -kernelbench instead measures the
// search kernel itself (wall-clock ns/op and allocs/op via
// testing.Benchmark) and writes the perf-trajectory record.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"parblast/internal/blast"
	"parblast/internal/experiments"
)

// seedBaseline is the kernel benchmark record of the growth seed (pre-CSR,
// pre-scratch, sequential kernel), measured on the same fixture; kept in the
// trajectory file so each BENCH_N.json is self-contained.
var seedBaseline = []blast.KernelBenchResult{
	{Name: "SearchFragment", NsPerOp: 3690884, AllocsPerOp: 3697, BytesPerOp: 670457},
	{Name: "BuildIndexProtein", NsPerOp: 713432, AllocsPerOp: 6005, BytesPerOp: 263128},
	{Name: "ExtendGapped", NsPerOp: 544499, AllocsPerOp: 218, BytesPerOp: 56312},
}

func runKernelBench(outPath string) error {
	results := blast.RunKernelBenchmarks()
	doc := struct {
		Suite    string                    `json:"suite"`
		Results  []blast.KernelBenchResult `json:"results"`
		Baseline []blast.KernelBenchResult `json:"seed_baseline"`
	}{Suite: "kernel", Results: results, Baseline: seedBaseline}
	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("%-24s %12.0f ns/op %8d allocs/op %10d B/op\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, fig1a, fig1b, table1, table2, fig3a, fig3b, fig4, ablations, hetero, faults")
	dbSeqs := flag.Int("dbseqs", 0, "override database sequence count")
	family := flag.Int("family", 0, "override family size (database redundancy)")
	queryBytes := flag.Int("querybytes", 0, "override the default ('150 KB'-equivalent) query set volume")
	kernelBench := flag.Bool("kernelbench", false, "run the search-kernel micro-benchmarks and write the perf-trajectory JSON")
	benchOut := flag.String("bench-out", "BENCH_1.json", "output path for -kernelbench")
	flag.Parse()

	if *kernelBench {
		if err := runKernelBench(*benchOut); err != nil {
			fmt.Fprintln(os.Stderr, "benchsuite:", err)
			os.Exit(1)
		}
		return
	}

	lab := experiments.DefaultLab()
	if *dbSeqs > 0 {
		lab.DB.NumSeqs = *dbSeqs
	}
	if *family > 0 {
		lab.DB.FamilySize = *family
	}
	if *queryBytes > 0 {
		lab.QuerySizes[2] = *queryBytes
	}

	runs := map[string]struct {
		title string
		fn    func(*experiments.Lab) ([]experiments.Row, error)
	}{
		"fig1a":     {"Figure 1(a): mpiBLAST time distribution", experiments.Fig1a},
		"fig1b":     {"Figure 1(b): fragment-count sensitivity (32 procs)", experiments.Fig1b},
		"table1":    {"Table 1: phase breakdown at 32 processes", experiments.Table1},
		"table2":    {"Table 2: query size vs output size", experiments.Table2},
		"fig3a":     {"Figure 3(a): node scalability (Altix/XFS)", experiments.Fig3a},
		"fig3b":     {"Figure 3(b): output scalability at 62 processes", experiments.Fig3b},
		"fig4":      {"Figure 4: node scalability (blade/NFS)", experiments.Fig4},
		"ablations": {"Ablations: output mode, pruning, granularity", experiments.Ablations},
		"hetero":    {"Heterogeneous cluster: static vs dynamic partitioning", experiments.Hetero},
	}

	if *exp == "all" {
		if err := experiments.All(os.Stdout, &lab); err != nil {
			fmt.Fprintln(os.Stderr, "benchsuite:", err)
			os.Exit(1)
		}
		return
	}
	// Faults returns its own row shape (recovery overheads, not phase
	// breakdowns), so it bypasses the generic table printer.
	if *exp == "faults" {
		rows, err := experiments.Faults(&lab)
		if err != nil {
			fmt.Fprintln(os.Stderr, "benchsuite:", err)
			os.Exit(1)
		}
		experiments.PrintFaultRows(os.Stdout, rows)
		return
	}
	r, ok := runs[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "benchsuite: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	rows, err := r.fn(&lab)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
	experiments.PrintRows(os.Stdout, r.title, rows)
}
