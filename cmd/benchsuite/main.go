// Command benchsuite regenerates the paper's evaluation: every table and
// figure of §4 plus the design-choice ablations, printed as rows of
// virtual-time phase breakdowns.
//
// Usage:
//
//	benchsuite [-exp all|fig1a|fig1b|table1|table2|fig3a|fig3b|fig4|ablations|readpath|hetero|faults|mergescale|latency|sla]
//	           [-dbseqs N] [-family N] [-querybytes N] [-mergescale-ranks 32,128]
//	           [-report suite.json]
//	benchsuite -kernelbench [-bench-out BENCH_1.json] [-mergescale]
//
// Times are virtual seconds from the cluster simulation; see EXPERIMENTS.md
// for the paper-vs-measured comparison. -report additionally writes the
// rows as a versioned machine-readable suite artifact (internal/report).
// -kernelbench instead measures the search kernel itself (wall-clock ns/op
// and allocs/op via testing.Benchmark) and writes the perf-trajectory record;
// with -mergescale it appends the merge-scalability sweep (flat vs tree
// master-merge time by rank count) so BENCH_N.json carries both curves.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"parblast/internal/blast"
	"parblast/internal/experiments"
	"parblast/internal/report"
)

// seedBaseline is the kernel benchmark record of the growth seed (pre-CSR,
// pre-scratch, sequential kernel), measured on the same fixture; kept in the
// trajectory file so each BENCH_N.json is self-contained.
var seedBaseline = []blast.KernelBenchResult{
	{Name: "SearchFragment", NsPerOp: 3690884, AllocsPerOp: 3697, BytesPerOp: 670457},
	{Name: "BuildIndexProtein", NsPerOp: 713432, AllocsPerOp: 6005, BytesPerOp: 263128},
	{Name: "ExtendGapped", NsPerOp: 544499, AllocsPerOp: 218, BytesPerOp: 56312},
}

func runKernelBench(outPath string, lab *experiments.Lab, mergeRanks []int) error {
	results := blast.RunKernelBenchmarks()
	doc := struct {
		Suite        string                      `json:"suite"`
		Results      []blast.KernelBenchResult   `json:"results"`
		Baseline     []blast.KernelBenchResult   `json:"seed_baseline"`
		MergeScale   []experiments.MergeScaleRow `json:"mergescale,omitempty"`
		MergeSpeedup map[string]float64          `json:"merge_speedup,omitempty"`
	}{Suite: "kernel", Results: results, Baseline: seedBaseline}
	if lab != nil {
		rows, err := experiments.MergeScale(lab, mergeRanks)
		if err != nil {
			return err
		}
		doc.Suite = "kernel+mergescale"
		doc.MergeScale = rows
		doc.MergeSpeedup = make(map[string]float64)
		speedup := experiments.MergeSpeedup(rows)
		for _, r := range rows {
			if r.Fanout == 0 {
				doc.MergeSpeedup[fmt.Sprintf("%d", r.Ranks)] = speedup[r.Ranks]
			}
		}
		experiments.PrintMergeScaleRows(os.Stdout, rows)
	}
	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("%-24s %12.0f ns/op %8d allocs/op %10d B/op\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

// suiteRows flattens experiment rows into the artifact's row shape.
func suiteRows(rows []experiments.Row) []report.SuiteRow {
	out := make([]report.SuiteRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, report.SuiteRow{
			Label:      r.Label,
			Engine:     r.Engine,
			Procs:      r.Procs,
			Fragments:  r.Fragments,
			QueryBytes: r.QueryBytes,
			Summary:    report.SummaryOf(r.Result),
		})
	}
	return out
}

// faultSuiteRows flattens fault-tolerance rows; the faulted run's summary
// carries the I/O retry/backoff stats.
func faultSuiteRows(rows []experiments.FaultRow) []report.SuiteRow {
	out := make([]report.SuiteRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, report.SuiteRow{
			Label:   r.Engine,
			Engine:  r.Engine,
			Procs:   r.Procs,
			Summary: report.SummaryOf(r.Result),
		})
	}
	return out
}

const faultsTitle = "Fault tolerance: worker crash at mid-search + transient I/O errors"
const mergeScaleTitle = "Merge scalability: flat master-ingest vs hierarchical tree merge"
const ioTuneTitle = "I/O auto-tuning: learned hints vs fixed heuristics"
const latencyTitle = "Per-query latency and exact critical path (ranks × protocols)"
const slaTitle = "Online serving: latency vs arrival rate, admission shedding (open-loop streams)"

// latencySuiteRows flattens latency-sweep rows into the suite artifact's
// row shape: the percentile block rides the summary's query_latency field,
// and the critical path's dominant blame labels the row.
func latencySuiteRows(rows []experiments.LatencyRow) []report.SuiteRow {
	out := make([]report.SuiteRow, 0, len(rows))
	for _, r := range rows {
		label := r.Protocol
		if r.Path != nil {
			label = fmt.Sprintf("%s dominant=%s", r.Protocol, r.Path.Dominant)
		}
		out = append(out, report.SuiteRow{
			Label:  label,
			Engine: r.Engine,
			Procs:  r.Procs,
			Summary: report.RunSummary{
				Wall:         r.Wall,
				QueryLatency: r.Latency,
			},
		})
	}
	return out
}

// ioTuneSuiteRows flattens tuned-vs-fixed cells into the suite artifact's
// row shape: the tuned wall per (profile, pattern) cell, labelled with the
// learned strategy.
func ioTuneSuiteRows(rows []experiments.IOTuneRow) []report.SuiteRow {
	out := make([]report.SuiteRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, report.SuiteRow{
			Label:  fmt.Sprintf("%s/%s %s", r.Profile, r.Pattern, r.Strategy),
			Engine: "iotune",
			Summary: report.RunSummary{
				Wall: r.TunedS,
			},
		})
	}
	return out
}

// mergeScaleSuiteRows flattens merge-scalability rows into the suite
// artifact's row shape: one row per (ranks, fanout) cell, phase-free.
func mergeScaleSuiteRows(rows []experiments.MergeScaleRow) []report.SuiteRow {
	out := make([]report.SuiteRow, 0, len(rows))
	for _, r := range rows {
		label := "flat"
		if r.Fanout > 0 {
			label = fmt.Sprintf("fanout=%d", r.Fanout)
		}
		out = append(out, report.SuiteRow{
			Label:  label,
			Engine: "mergescale",
			Procs:  r.Ranks,
			Summary: report.RunSummary{
				Wall:        r.WallS,
				OutputBytes: r.OutputBytes,
			},
		})
	}
	return out
}

// slaSuiteRows flattens serving-mode rows into the suite artifact's row
// shape: the percentile block rides the summary's query_latency field and
// the admission accounting rides the dedicated sla block.
func slaSuiteRows(rows []experiments.SLARow) []report.SuiteRow {
	out := make([]report.SuiteRow, 0, len(rows))
	for _, r := range rows {
		summary := report.SummaryOf(r.Result)
		out = append(out, report.SuiteRow{
			Label:   r.Label,
			Engine:  r.Engine,
			Procs:   r.Procs,
			Summary: summary,
			SLA: &report.SLAInfo{
				Sweep:       r.Sweep,
				ArrivalRate: r.Rate,
				Burst:       r.Burst,
				BatchMean:   r.BatchMean,
				AdmitCap:    r.AdmitCap,
				Arrivals:    r.Arrivals,
				Admitted:    r.Admitted,
				Shed:        r.Shed,
				Saturated:   r.Shed > 0,
			},
		})
	}
	return out
}

// parseRankList parses a comma-separated rank-count list ("8,32").
func parseRankList(s string) ([]int, error) {
	if s == "" {
		return nil, nil
	}
	var out []int
	for _, part := range strings.Split(s, ",") {
		n, err := strconv.Atoi(strings.TrimSpace(part))
		if err != nil || n < 2 {
			return nil, fmt.Errorf("bad rank count %q", part)
		}
		out = append(out, n)
	}
	return out, nil
}

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, fig1a, fig1b, table1, table2, fig3a, fig3b, fig4, ablations, readpath, hetero, faults, mergescale, iotune, latency, sla")
	hintsOut := flag.String("hints-out", "", "with -exp iotune (or all): write the learned-hints artifact to this path")
	dbSeqs := flag.Int("dbseqs", 0, "override database sequence count")
	family := flag.Int("family", 0, "override family size (database redundancy)")
	queryBytes := flag.Int("querybytes", 0, "override the default ('150 KB'-equivalent) query set volume")
	kernelBench := flag.Bool("kernelbench", false, "run the search-kernel micro-benchmarks and write the perf-trajectory JSON")
	benchOut := flag.String("bench-out", "BENCH_1.json", "output path for -kernelbench")
	withMergeScale := flag.Bool("mergescale", false, "with -kernelbench: append the merge-scalability sweep to the JSON")
	mergeRanksFlag := flag.String("mergescale-ranks", "", "comma-separated rank counts for the mergescale sweep (default 32,128,512,1024)")
	reportPath := flag.String("report", "", "write a machine-readable JSON suite artifact to this path")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}

	mergeRanks, err := parseRankList(*mergeRanksFlag)
	if err != nil {
		fail(err)
	}

	if *kernelBench {
		var benchLab *experiments.Lab
		if *withMergeScale {
			l := experiments.DefaultLab()
			benchLab = &l
		}
		if err := runKernelBench(*benchOut, benchLab, mergeRanks); err != nil {
			fail(err)
		}
		return
	}

	lab := experiments.DefaultLab()
	if *dbSeqs > 0 {
		lab.DB.NumSeqs = *dbSeqs
	}
	if *family > 0 {
		lab.DB.FamilySize = *family
	}
	if *queryBytes > 0 {
		lab.QuerySizes[2] = *queryBytes
	}

	suite := report.NewSuite(*exp)
	// runIOTune runs the tuned-vs-fixed study, records its suite rows, and
	// optionally persists the learned-hints artifact. IOTune enforces the
	// regression gate itself (tuned ≤ fixed everywhere, strict win
	// somewhere, byte-identity always); rows print even when it trips so
	// the offending cell is visible.
	runIOTune := func() error {
		rows, artifact, err := experiments.IOTune(&lab)
		experiments.PrintIOTuneRows(os.Stdout, rows)
		if err != nil {
			return err
		}
		suite.Experiments = append(suite.Experiments, report.Experiment{
			Name: "iotune", Title: ioTuneTitle, Rows: ioTuneSuiteRows(rows),
		})
		if *hintsOut != "" {
			data, err := artifact.Encode()
			if err != nil {
				return err
			}
			if err := os.WriteFile(*hintsOut, data, 0o644); err != nil {
				return err
			}
			fmt.Printf("learned I/O hints: %d keys → %s\n", len(artifact.Entries), *hintsOut)
		}
		return nil
	}
	switch *exp {
	case "all":
		for _, spec := range experiments.Specs() {
			rows, err := spec.Run(&lab)
			if err != nil {
				fail(fmt.Errorf("%s: %w", spec.Title, err))
			}
			experiments.PrintRows(os.Stdout, spec.Title, rows)
			suite.Experiments = append(suite.Experiments, report.Experiment{
				Name: spec.Name, Title: spec.Title, Rows: suiteRows(rows),
			})
		}
		prep, err := experiments.PrepCost(&lab)
		if err != nil {
			fail(fmt.Errorf("prep cost: %w", err))
		}
		experiments.PrintPrepRows(os.Stdout, prep)
		faults, err := experiments.Faults(&lab)
		if err != nil {
			fail(fmt.Errorf("faults: %w", err))
		}
		experiments.PrintFaultRows(os.Stdout, faults)
		suite.Experiments = append(suite.Experiments, report.Experiment{
			Name: "faults", Title: faultsTitle, Rows: faultSuiteRows(faults),
		})
		msRows, err := experiments.MergeScale(&lab, mergeRanks)
		if err != nil {
			fail(fmt.Errorf("mergescale: %w", err))
		}
		experiments.PrintMergeScaleRows(os.Stdout, msRows)
		suite.Experiments = append(suite.Experiments, report.Experiment{
			Name: "mergescale", Title: mergeScaleTitle, Rows: mergeScaleSuiteRows(msRows),
		})
		if err := runIOTune(); err != nil {
			fail(fmt.Errorf("iotune: %w", err))
		}
		latRows, err := experiments.Latency(&lab)
		if err != nil {
			fail(fmt.Errorf("latency: %w", err))
		}
		experiments.PrintLatencyRows(os.Stdout, latRows)
		suite.Experiments = append(suite.Experiments, report.Experiment{
			Name: "latency", Title: latencyTitle, Rows: latencySuiteRows(latRows),
		})
		slaRows, err := experiments.SLA(&lab)
		if err != nil {
			fail(fmt.Errorf("sla: %w", err))
		}
		experiments.PrintSLARows(os.Stdout, slaRows)
		suite.Experiments = append(suite.Experiments, report.Experiment{
			Name: "sla", Title: slaTitle, Rows: slaSuiteRows(slaRows),
		})
	case "sla":
		// Serving-mode rows carry admission accounting and arrival-anchored
		// percentile blocks (own row shape), so they bypass the generic
		// printer. Every row is byte-identity-gated against a one-shot run
		// over its admitted queries before it is reported.
		rows, err := experiments.SLA(&lab)
		if err != nil {
			fail(err)
		}
		experiments.PrintSLARows(os.Stdout, rows)
		suite.Experiments = append(suite.Experiments, report.Experiment{
			Name: "sla", Title: slaTitle, Rows: slaSuiteRows(rows),
		})
	case "latency":
		// Latency rows carry percentile blocks and the exact critical path
		// (own row shape), so they bypass the generic printer.
		rows, err := experiments.Latency(&lab)
		if err != nil {
			fail(err)
		}
		experiments.PrintLatencyRows(os.Stdout, rows)
		suite.Experiments = append(suite.Experiments, report.Experiment{
			Name: "latency", Title: latencyTitle, Rows: latencySuiteRows(rows),
		})
	case "iotune":
		// Like faults and mergescale, iotune has its own row shape (fixed
		// vs tuned walls, learned decisions), so it bypasses the generic
		// printer.
		if err := runIOTune(); err != nil {
			fail(err)
		}
	case "mergescale":
		// Like faults, mergescale has its own row shape (master-clock merge
		// spans, not phase breakdowns), so it bypasses the generic printer.
		rows, err := experiments.MergeScale(&lab, mergeRanks)
		if err != nil {
			fail(err)
		}
		experiments.PrintMergeScaleRows(os.Stdout, rows)
		suite.Experiments = append(suite.Experiments, report.Experiment{
			Name: "mergescale", Title: mergeScaleTitle, Rows: mergeScaleSuiteRows(rows),
		})
	case "faults":
		// Faults returns its own row shape (recovery overheads, not phase
		// breakdowns), so it bypasses the generic table printer.
		rows, err := experiments.Faults(&lab)
		if err != nil {
			fail(err)
		}
		experiments.PrintFaultRows(os.Stdout, rows)
		suite.Experiments = append(suite.Experiments, report.Experiment{
			Name: "faults", Title: faultsTitle, Rows: faultSuiteRows(rows),
		})
	default:
		var spec *experiments.Spec
		for _, s := range experiments.Specs() {
			if s.Name == *exp {
				s := s
				spec = &s
				break
			}
		}
		if spec == nil {
			fmt.Fprintf(os.Stderr, "benchsuite: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		rows, err := spec.Run(&lab)
		if err != nil {
			fail(err)
		}
		experiments.PrintRows(os.Stdout, spec.Title, rows)
		suite.Experiments = append(suite.Experiments, report.Experiment{
			Name: spec.Name, Title: spec.Title, Rows: suiteRows(rows),
		})
	}

	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			fail(err)
		}
		if err := suite.WriteJSON(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("suite report → %s\n", *reportPath)
	}
}
