// Command benchsuite regenerates the paper's evaluation: every table and
// figure of §4 plus the design-choice ablations, printed as rows of
// virtual-time phase breakdowns.
//
// Usage:
//
//	benchsuite [-exp all|fig1a|fig1b|table1|table2|fig3a|fig3b|fig4|ablations|readpath|hetero|faults]
//	           [-dbseqs N] [-family N] [-querybytes N] [-report suite.json]
//	benchsuite -kernelbench [-bench-out BENCH_1.json]
//
// Times are virtual seconds from the cluster simulation; see EXPERIMENTS.md
// for the paper-vs-measured comparison. -report additionally writes the
// rows as a versioned machine-readable suite artifact (internal/report).
// -kernelbench instead measures the search kernel itself (wall-clock ns/op
// and allocs/op via testing.Benchmark) and writes the perf-trajectory record.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"

	"parblast/internal/blast"
	"parblast/internal/experiments"
	"parblast/internal/report"
)

// seedBaseline is the kernel benchmark record of the growth seed (pre-CSR,
// pre-scratch, sequential kernel), measured on the same fixture; kept in the
// trajectory file so each BENCH_N.json is self-contained.
var seedBaseline = []blast.KernelBenchResult{
	{Name: "SearchFragment", NsPerOp: 3690884, AllocsPerOp: 3697, BytesPerOp: 670457},
	{Name: "BuildIndexProtein", NsPerOp: 713432, AllocsPerOp: 6005, BytesPerOp: 263128},
	{Name: "ExtendGapped", NsPerOp: 544499, AllocsPerOp: 218, BytesPerOp: 56312},
}

func runKernelBench(outPath string) error {
	results := blast.RunKernelBenchmarks()
	doc := struct {
		Suite    string                    `json:"suite"`
		Results  []blast.KernelBenchResult `json:"results"`
		Baseline []blast.KernelBenchResult `json:"seed_baseline"`
	}{Suite: "kernel", Results: results, Baseline: seedBaseline}
	data, err := json.MarshalIndent(&doc, "", "  ")
	if err != nil {
		return err
	}
	data = append(data, '\n')
	if err := os.WriteFile(outPath, data, 0o644); err != nil {
		return err
	}
	for _, r := range results {
		fmt.Printf("%-24s %12.0f ns/op %8d allocs/op %10d B/op\n",
			r.Name, r.NsPerOp, r.AllocsPerOp, r.BytesPerOp)
	}
	fmt.Printf("wrote %s\n", outPath)
	return nil
}

// suiteRows flattens experiment rows into the artifact's row shape.
func suiteRows(rows []experiments.Row) []report.SuiteRow {
	out := make([]report.SuiteRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, report.SuiteRow{
			Label:      r.Label,
			Engine:     r.Engine,
			Procs:      r.Procs,
			Fragments:  r.Fragments,
			QueryBytes: r.QueryBytes,
			Summary:    report.SummaryOf(r.Result),
		})
	}
	return out
}

// faultSuiteRows flattens fault-tolerance rows; the faulted run's summary
// carries the I/O retry/backoff stats.
func faultSuiteRows(rows []experiments.FaultRow) []report.SuiteRow {
	out := make([]report.SuiteRow, 0, len(rows))
	for _, r := range rows {
		out = append(out, report.SuiteRow{
			Label:   r.Engine,
			Engine:  r.Engine,
			Procs:   r.Procs,
			Summary: report.SummaryOf(r.Result),
		})
	}
	return out
}

const faultsTitle = "Fault tolerance: worker crash at mid-search + transient I/O errors"

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, fig1a, fig1b, table1, table2, fig3a, fig3b, fig4, ablations, readpath, hetero, faults")
	dbSeqs := flag.Int("dbseqs", 0, "override database sequence count")
	family := flag.Int("family", 0, "override family size (database redundancy)")
	queryBytes := flag.Int("querybytes", 0, "override the default ('150 KB'-equivalent) query set volume")
	kernelBench := flag.Bool("kernelbench", false, "run the search-kernel micro-benchmarks and write the perf-trajectory JSON")
	benchOut := flag.String("bench-out", "BENCH_1.json", "output path for -kernelbench")
	reportPath := flag.String("report", "", "write a machine-readable JSON suite artifact to this path")
	flag.Parse()

	fail := func(err error) {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}

	if *kernelBench {
		if err := runKernelBench(*benchOut); err != nil {
			fail(err)
		}
		return
	}

	lab := experiments.DefaultLab()
	if *dbSeqs > 0 {
		lab.DB.NumSeqs = *dbSeqs
	}
	if *family > 0 {
		lab.DB.FamilySize = *family
	}
	if *queryBytes > 0 {
		lab.QuerySizes[2] = *queryBytes
	}

	suite := report.NewSuite(*exp)
	switch *exp {
	case "all":
		for _, spec := range experiments.Specs() {
			rows, err := spec.Run(&lab)
			if err != nil {
				fail(fmt.Errorf("%s: %w", spec.Title, err))
			}
			experiments.PrintRows(os.Stdout, spec.Title, rows)
			suite.Experiments = append(suite.Experiments, report.Experiment{
				Name: spec.Name, Title: spec.Title, Rows: suiteRows(rows),
			})
		}
		prep, err := experiments.PrepCost(&lab)
		if err != nil {
			fail(fmt.Errorf("prep cost: %w", err))
		}
		experiments.PrintPrepRows(os.Stdout, prep)
		faults, err := experiments.Faults(&lab)
		if err != nil {
			fail(fmt.Errorf("faults: %w", err))
		}
		experiments.PrintFaultRows(os.Stdout, faults)
		suite.Experiments = append(suite.Experiments, report.Experiment{
			Name: "faults", Title: faultsTitle, Rows: faultSuiteRows(faults),
		})
	case "faults":
		// Faults returns its own row shape (recovery overheads, not phase
		// breakdowns), so it bypasses the generic table printer.
		rows, err := experiments.Faults(&lab)
		if err != nil {
			fail(err)
		}
		experiments.PrintFaultRows(os.Stdout, rows)
		suite.Experiments = append(suite.Experiments, report.Experiment{
			Name: "faults", Title: faultsTitle, Rows: faultSuiteRows(rows),
		})
	default:
		var spec *experiments.Spec
		for _, s := range experiments.Specs() {
			if s.Name == *exp {
				s := s
				spec = &s
				break
			}
		}
		if spec == nil {
			fmt.Fprintf(os.Stderr, "benchsuite: unknown experiment %q\n", *exp)
			os.Exit(2)
		}
		rows, err := spec.Run(&lab)
		if err != nil {
			fail(err)
		}
		experiments.PrintRows(os.Stdout, spec.Title, rows)
		suite.Experiments = append(suite.Experiments, report.Experiment{
			Name: spec.Name, Title: spec.Title, Rows: suiteRows(rows),
		})
	}

	if *reportPath != "" {
		f, err := os.Create(*reportPath)
		if err != nil {
			fail(err)
		}
		if err := suite.WriteJSON(f); err != nil {
			fail(err)
		}
		if err := f.Close(); err != nil {
			fail(err)
		}
		fmt.Printf("suite report → %s\n", *reportPath)
	}
}
