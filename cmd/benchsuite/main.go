// Command benchsuite regenerates the paper's evaluation: every table and
// figure of §4 plus the design-choice ablations, printed as rows of
// virtual-time phase breakdowns.
//
// Usage:
//
//	benchsuite [-exp all|fig1a|fig1b|table1|table2|fig3a|fig3b|fig4|ablations]
//	           [-dbseqs N] [-family N] [-querybytes N]
//
// Times are virtual seconds from the cluster simulation; see EXPERIMENTS.md
// for the paper-vs-measured comparison.
package main

import (
	"flag"
	"fmt"
	"os"

	"parblast/internal/experiments"
)

func main() {
	exp := flag.String("exp", "all", "experiment to run: all, fig1a, fig1b, table1, table2, fig3a, fig3b, fig4, ablations, hetero")
	dbSeqs := flag.Int("dbseqs", 0, "override database sequence count")
	family := flag.Int("family", 0, "override family size (database redundancy)")
	queryBytes := flag.Int("querybytes", 0, "override the default ('150 KB'-equivalent) query set volume")
	flag.Parse()

	lab := experiments.DefaultLab()
	if *dbSeqs > 0 {
		lab.DB.NumSeqs = *dbSeqs
	}
	if *family > 0 {
		lab.DB.FamilySize = *family
	}
	if *queryBytes > 0 {
		lab.QuerySizes[2] = *queryBytes
	}

	runs := map[string]struct {
		title string
		fn    func(*experiments.Lab) ([]experiments.Row, error)
	}{
		"fig1a":     {"Figure 1(a): mpiBLAST time distribution", experiments.Fig1a},
		"fig1b":     {"Figure 1(b): fragment-count sensitivity (32 procs)", experiments.Fig1b},
		"table1":    {"Table 1: phase breakdown at 32 processes", experiments.Table1},
		"table2":    {"Table 2: query size vs output size", experiments.Table2},
		"fig3a":     {"Figure 3(a): node scalability (Altix/XFS)", experiments.Fig3a},
		"fig3b":     {"Figure 3(b): output scalability at 62 processes", experiments.Fig3b},
		"fig4":      {"Figure 4: node scalability (blade/NFS)", experiments.Fig4},
		"ablations": {"Ablations: output mode, pruning, granularity", experiments.Ablations},
		"hetero":    {"Heterogeneous cluster: static vs dynamic partitioning", experiments.Hetero},
	}

	if *exp == "all" {
		if err := experiments.All(os.Stdout, &lab); err != nil {
			fmt.Fprintln(os.Stderr, "benchsuite:", err)
			os.Exit(1)
		}
		return
	}
	r, ok := runs[*exp]
	if !ok {
		fmt.Fprintf(os.Stderr, "benchsuite: unknown experiment %q\n", *exp)
		os.Exit(2)
	}
	rows, err := r.fn(&lab)
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsuite:", err)
		os.Exit(1)
	}
	experiments.PrintRows(os.Stdout, r.title, rows)
}
