package parblast_test

// Benchmark harness: one testing.B benchmark per table and figure of the
// paper's evaluation. Each benchmark executes the corresponding experiment
// on the simulated cluster and reports the key virtual-time quantities as
// custom benchmark metrics (suffix "vs" = virtual seconds; "pct" = percent;
// "bytes" = report volume). Run with:
//
//	go test -bench=. -benchmem
//
// The rows themselves (the paper-style tables) are printed once per
// benchmark; EXPERIMENTS.md records the paper-vs-measured comparison.

import (
	"fmt"
	"os"
	"sync"
	"testing"

	"parblast/internal/experiments"
)

var printOnce sync.Map

func runExperiment(b *testing.B, name string, fn func(*experiments.Lab) ([]experiments.Row, error)) []experiments.Row {
	b.Helper()
	lab := experiments.DefaultLab()
	var rows []experiments.Row
	var err error
	for i := 0; i < b.N; i++ {
		rows, err = fn(&lab)
		if err != nil {
			b.Fatal(err)
		}
	}
	if _, done := printOnce.LoadOrStore(name, true); !done {
		experiments.PrintRows(os.Stdout, name, rows)
	}
	return rows
}

func metric(b *testing.B, rows []experiments.Row, pick func(experiments.Row) bool, key string, val func(experiments.Row) float64) {
	for _, r := range rows {
		if pick(r) {
			b.ReportMetric(val(r), key)
			return
		}
	}
	b.Fatalf("no row matched for metric %s", key)
}

// BenchmarkFig1aMpiBlastBreakdown regenerates Figure 1(a): the mpiBLAST
// search/non-search split at 16/32/64 processes on the nt-like workload.
func BenchmarkFig1aMpiBlastBreakdown(b *testing.B) {
	rows := runExperiment(b, "Figure 1(a)", experiments.Fig1a)
	metric(b, rows, func(r experiments.Row) bool { return r.Procs == 16 },
		"srch16_pct", func(r experiments.Row) float64 { return r.Result.SearchFraction() * 100 })
	metric(b, rows, func(r experiments.Row) bool { return r.Procs == 64 },
		"srch64_pct", func(r experiments.Row) float64 { return r.Result.SearchFraction() * 100 })
}

// BenchmarkFig1bFragmentSensitivity regenerates Figure 1(b): mpiBLAST
// execution time versus fragment count at 32 processes.
func BenchmarkFig1bFragmentSensitivity(b *testing.B) {
	rows := runExperiment(b, "Figure 1(b)", experiments.Fig1b)
	metric(b, rows, func(r experiments.Row) bool { return r.Fragments == 31 },
		"total31_vs", func(r experiments.Row) float64 { return r.Result.Wall })
	metric(b, rows, func(r experiments.Row) bool { return r.Fragments == 167 },
		"total167_vs", func(r experiments.Row) float64 { return r.Result.Wall })
}

// BenchmarkTable1Breakdown regenerates Table 1: the per-phase breakdown of
// both engines at 32 processes (the paper's 1354.1 s vs 307.9 s headline).
func BenchmarkTable1Breakdown(b *testing.B) {
	rows := runExperiment(b, "Table 1", experiments.Table1)
	var mpi, pio experiments.Row
	for _, r := range rows {
		if r.Engine == "mpi" {
			mpi = r
		} else {
			pio = r
		}
	}
	b.ReportMetric(mpi.Result.Wall, "mpi_total_vs")
	b.ReportMetric(pio.Result.Wall, "pio_total_vs")
	b.ReportMetric(mpi.Result.Phase.Output, "mpi_output_vs")
	b.ReportMetric(pio.Result.Phase.Output, "pio_output_vs")
	b.ReportMetric(mpi.Result.Wall/pio.Result.Wall, "speedup_x")
}

// BenchmarkTable2OutputSizes regenerates Table 2: the query-size →
// output-size map.
func BenchmarkTable2OutputSizes(b *testing.B) {
	rows := runExperiment(b, "Table 2", experiments.Table2)
	for _, r := range rows {
		b.ReportMetric(float64(r.OutputBytes), fmt.Sprintf("out_q%d_bytes", r.QueryBytes))
	}
}

// BenchmarkFig3aNodeScalability regenerates Figure 3(a): both engines from
// 4 to 62 processes on the Altix platform. The paper's shape: mpiBLAST's
// total starts growing past 31 workers; pioBLAST keeps improving.
func BenchmarkFig3aNodeScalability(b *testing.B) {
	rows := runExperiment(b, "Figure 3(a)", experiments.Fig3a)
	metric(b, rows, func(r experiments.Row) bool { return r.Engine == "mpi" && r.Procs == 32 },
		"mpi32_vs", func(r experiments.Row) float64 { return r.Result.Wall })
	metric(b, rows, func(r experiments.Row) bool { return r.Engine == "mpi" && r.Procs == 62 },
		"mpi62_vs", func(r experiments.Row) float64 { return r.Result.Wall })
	metric(b, rows, func(r experiments.Row) bool { return r.Engine == "pio" && r.Procs == 32 },
		"pio32_vs", func(r experiments.Row) float64 { return r.Result.Wall })
	metric(b, rows, func(r experiments.Row) bool { return r.Engine == "pio" && r.Procs == 62 },
		"pio62_vs", func(r experiments.Row) float64 { return r.Result.Wall })
}

// BenchmarkFig3bOutputScalability regenerates Figure 3(b): both engines at
// 62 processes across the four query/output sizes.
func BenchmarkFig3bOutputScalability(b *testing.B) {
	rows := runExperiment(b, "Figure 3(b)", experiments.Fig3b)
	small, large := 1500, 17000
	metric(b, rows, func(r experiments.Row) bool { return r.Engine == "mpi" && r.QueryBytes == large },
		"mpi_large_vs", func(r experiments.Row) float64 { return r.Result.Wall })
	metric(b, rows, func(r experiments.Row) bool { return r.Engine == "pio" && r.QueryBytes == large },
		"pio_large_vs", func(r experiments.Row) float64 { return r.Result.Wall })
	metric(b, rows, func(r experiments.Row) bool { return r.Engine == "pio" && r.QueryBytes == small },
		"pio_small_vs", func(r experiments.Row) float64 { return r.Result.Wall })
}

// BenchmarkFig4NFSCluster regenerates Figure 4: the scalability study on
// the NFS-backed blade cluster, where both engines degrade but mpiBLAST
// degrades much harder.
func BenchmarkFig4NFSCluster(b *testing.B) {
	rows := runExperiment(b, "Figure 4", experiments.Fig4)
	metric(b, rows, func(r experiments.Row) bool { return r.Engine == "pio" && r.Procs == 4 },
		"pio4_srch_pct", func(r experiments.Row) float64 { return r.Result.SearchFraction() * 100 })
	metric(b, rows, func(r experiments.Row) bool { return r.Engine == "pio" && r.Procs == 32 },
		"pio32_srch_pct", func(r experiments.Row) float64 { return r.Result.SearchFraction() * 100 })
	metric(b, rows, func(r experiments.Row) bool { return r.Engine == "mpi" && r.Procs == 32 },
		"mpi32_srch_pct", func(r experiments.Row) float64 { return r.Result.SearchFraction() * 100 })
}

// BenchmarkAblations measures the design-choice ablations: collective vs
// independent output on both file systems, early score pruning, and
// virtual-fragment granularity.
func BenchmarkAblations(b *testing.B) {
	rows := runExperiment(b, "Ablations", experiments.Ablations)
	find := func(name string) experiments.Row {
		for _, r := range rows {
			if r.Label == name {
				return r
			}
		}
		b.Fatalf("ablation %s missing", name)
		return experiments.Row{}
	}
	coll := find("pio-coll-nfs")
	indep := find("pio-indep-nfs")
	b.ReportMetric(indep.Result.Phase.Output/coll.Result.Phase.Output, "nfs_indep_penalty_x")
	b.ReportMetric(find("pio-frag248").Result.Wall/find("pio-collective").Result.Wall, "frag248_penalty_x")
}
