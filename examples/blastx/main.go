// Blastx demonstrates the translated-search substrate: a DNA query (as it
// would come off a sequencer) is translated in all six reading frames and
// searched against a protein database — the blastx mode of the BLAST
// family, built on the same kernel the parallel engines use.
package main

import (
	"fmt"
	"log"

	"parblast"
	"parblast/internal/blast"
	"parblast/internal/seq"
	"parblast/internal/stats"
)

func main() {
	// A protein "database" with realistic composition.
	proteins, err := parblast.SynthesizeDB(parblast.DBConfig{
		Kind:    parblast.Protein,
		NumSeqs: 120,
		MeanLen: 260,
		Seed:    77,
	})
	if err != nil {
		log.Fatal(err)
	}
	frag := &blast.Fragment{}
	for i, p := range proteins {
		frag.Subjects = append(frag.Subjects, blast.Subject{
			OID: i, ID: p.ID, Defline: p.Description, Residues: p.Residues,
		})
	}

	// A DNA read that happens to encode residues 40..120 of protein 33 —
	// on the REVERSE strand, as half of all reads do.
	target := proteins[33].Residues[40:120]
	coding := backTranslate(target)
	read := &seq.Sequence{
		ID:       "read_0001",
		Residues: seq.ReverseComplement(coding),
		Alpha:    seq.DNAAlphabet,
	}

	searcher, err := blast.NewSearcher(blast.DefaultProteinOptions())
	if err != nil {
		log.Fatal(err)
	}
	space := stats.NewSearchSpace(searcher.GappedParams(), len(target),
		frag.TotalResidues(), len(frag.Subjects))
	res, err := blast.SearchTranslatedQuery(searcher, read, frag, space)
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("blastx: %d-bp read vs %d proteins → %d frame hits\n",
		read.Len(), len(frag.Subjects), len(res.Hits))
	for i, fh := range res.Hits {
		if i == 5 {
			fmt.Printf("  … and %d more\n", len(res.Hits)-5)
			break
		}
		h := fh.Hit.HSPs[0]
		fmt.Printf("  frame %+d  %-14s  score=%4d  bits=%6.1f  E=%s  span q[%d:%d] s[%d:%d]\n",
			fh.Frame, fh.Hit.ID, h.Score, h.BitScore, stats.FormatEValue(h.EValue),
			h.QueryFrom, h.QueryTo, h.SubjFrom, h.SubjTo)
	}
	if len(res.Hits) > 0 && res.Hits[0].Frame == -1 && res.Hits[0].Hit.OID == 33 {
		fmt.Println("\ntop hit is the true source protein on the reverse strand ✓")
	}
}

// backTranslate picks one codon per residue (the same table the kernel
// tests use).
func backTranslate(prot []byte) []byte {
	codonFor := map[byte]string{
		'A': "GCT", 'R': "CGT", 'N': "AAT", 'D': "GAT", 'C': "TGT",
		'Q': "CAA", 'E': "GAA", 'G': "GGT", 'H': "CAT", 'I': "ATT",
		'L': "CTT", 'K': "AAA", 'M': "ATG", 'F': "TTT", 'P': "CCT",
		'S': "TCT", 'T': "ACT", 'W': "TGG", 'Y': "TAT", 'V': "GTT",
	}
	var letters []byte
	for _, c := range prot {
		letters = append(letters, codonFor[seq.ProteinAlphabet.Letter(c)]...)
	}
	codes, _ := seq.DNAAlphabet.Encode(letters)
	return codes
}
