// Clustersim reruns the paper's central comparison interactively: mpiBLAST
// vs pioBLAST at several process counts on both of the paper's platforms —
// the XFS-backed Altix and the NFS-backed blade cluster — and prints the
// phase breakdowns side by side. It also verifies, like the paper asserts,
// that both engines produce byte-identical reports.
package main

import (
	"bytes"
	"fmt"
	"log"

	"parblast"
)

func main() {
	seqs, err := parblast.SynthesizeDB(parblast.DBConfig{
		Kind:       parblast.Protein,
		NumSeqs:    400,
		MeanLen:    280,
		Seed:       7,
		FamilySize: 10,
	})
	if err != nil {
		log.Fatal(err)
	}
	queries, err := parblast.SampleQueries(seqs, parblast.QueryConfig{
		TargetBytes:  4000,
		MeanLen:      350,
		MutationRate: 0.05,
		Seed:         3,
	})
	if err != nil {
		log.Fatal(err)
	}

	platforms := []parblast.Platform{parblast.PlatformAltix, parblast.PlatformBladeCluster}
	engines := []parblast.Engine{parblast.EngineMPIBlast, parblast.EnginePioBLAST}

	fmt.Printf("%-10s %-9s %5s | %7s %7s %7s %7s | %8s %7s\n",
		"platform", "engine", "procs", "copy", "input", "search", "output", "total", "srch%")
	for _, platform := range platforms {
		for _, procs := range []int{4, 16, 32} {
			var outputs [][]byte
			for _, eng := range engines {
				cluster, err := parblast.NewCluster(procs, platform)
				if err != nil {
					log.Fatal(err)
				}
				db, err := cluster.FormatDB("nr", seqs, "clustersim nr")
				if err != nil {
					log.Fatal(err)
				}
				if eng == parblast.EngineMPIBlast {
					if err := cluster.PrepareFragments("nr", procs-1); err != nil {
						log.Fatal(err)
					}
				}
				res, err := cluster.Run(eng, parblast.Search{
					DB: db, Queries: queries, Output: "results.out",
				})
				if err != nil {
					log.Fatal(err)
				}
				out, err := cluster.ReadOutput("results.out")
				if err != nil {
					log.Fatal(err)
				}
				outputs = append(outputs, out)
				fmt.Printf("%-10s %-9s %5d | %7.2f %7.2f %7.2f %7.2f | %8.2f %6.1f%%\n",
					platform, eng, procs,
					res.Phase.Copy, res.Phase.Input, res.Phase.Search, res.Phase.Output,
					res.Wall, res.SearchFraction()*100)
			}
			if !bytes.Equal(outputs[0], outputs[1]) {
				log.Fatalf("ENGINE OUTPUTS DIFFER at %s/%d procs", platforms, procs)
			}
		}
	}
	fmt.Println("\nall engine outputs byte-identical ✓  (as the paper states)")
}
