// Dbcompare demonstrates the heavy-output regime the paper's §5 worries
// about — database-against-database comparison, where EVERY database
// sequence is also a query — using query batching to bound memory and
// per-query synchronization: queries are processed in batches, each batch
// one parallel search. The paper lists query batching as the planned
// extension for exactly this workload.
package main

import (
	"fmt"
	"log"

	"parblast"
)

func main() {
	// Two related sequence collections: "genomeB" is a mutated relative of
	// "genomeA" (think: two bacterial strains).
	genomeA, err := parblast.SynthesizeDB(parblast.DBConfig{
		Kind:     parblast.Protein,
		NumSeqs:  150,
		MeanLen:  220,
		Seed:     11,
		IDPrefix: "strainA",
	})
	if err != nil {
		log.Fatal(err)
	}
	// Sample "genes" of strain B from strain A with heavier divergence.
	genomeB, err := parblast.SampleQueries(genomeA, parblast.QueryConfig{
		TargetBytes:  12000,
		MeanLen:      220,
		MutationRate: 0.12,
		Seed:         13,
	})
	if err != nil {
		log.Fatal(err)
	}

	cluster, err := parblast.NewCluster(16, parblast.PlatformAltix)
	if err != nil {
		log.Fatal(err)
	}
	db, err := cluster.FormatDB("strainA", genomeA, "strain A proteome")
	if err != nil {
		log.Fatal(err)
	}

	const batchSize = 12
	var totalWall, totalSearch float64
	var totalOut int64
	matches := 0
	for start := 0; start < len(genomeB); start += batchSize {
		end := start + batchSize
		if end > len(genomeB) {
			end = len(genomeB)
		}
		batch := genomeB[start:end]
		out := fmt.Sprintf("batch_%03d.out", start/batchSize)
		res, err := cluster.Run(parblast.EnginePioBLAST, parblast.Search{
			DB:      db,
			Queries: batch,
			Output:  out,
		})
		if err != nil {
			log.Fatal(err)
		}
		totalWall += res.Wall
		totalSearch += res.Phase.Search
		totalOut += res.OutputBytes
		report, err := cluster.ReadOutput(out)
		if err != nil {
			log.Fatal(err)
		}
		matches += countOccurrences(report, []byte("Score ="))
	}

	fmt.Printf("strain B proteome: %d sequences compared against strain A (%d sequences)\n",
		len(genomeB), db.NumSeqs)
	fmt.Printf("batches of %d queries; total virtual time %.2fs (search %.2fs, %.0f%%)\n",
		batchSize, totalWall, totalSearch, 100*totalSearch/totalWall)
	fmt.Printf("reported alignments: %d; total report volume: %d bytes\n", matches, totalOut)
}

func countOccurrences(haystack, needle []byte) int {
	count := 0
	for i := 0; i+len(needle) <= len(haystack); i++ {
		match := true
		for j := range needle {
			if haystack[i+j] != needle[j] {
				match = false
				break
			}
		}
		if match {
			count++
		}
	}
	return count
}
