// Quickstart: build a small synthetic protein database, run a pioBLAST
// search over a simulated 8-node cluster, and print the top of the report
// plus the phase timing — the five-minute tour of the public API.
package main

import (
	"fmt"
	"log"
	"strings"

	"parblast"
)

func main() {
	// 1. A simulated cluster: 8 MPI ranks on an Altix-like platform
	//    (fast shared XFS storage, no node-local disks).
	cluster, err := parblast.NewCluster(8, parblast.PlatformAltix)
	if err != nil {
		log.Fatal(err)
	}

	// 2. A synthetic protein database standing in for GenBank nr:
	//    realistic residue frequencies, redundant families like real
	//    repositories have.
	seqs, err := parblast.SynthesizeDB(parblast.DBConfig{
		Kind:       parblast.Protein,
		NumSeqs:    300,
		MeanLen:    250,
		Seed:       42,
		FamilySize: 8,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 3. Format it once (the formatdb step). pioBLAST needs no physical
	//    pre-partitioning: it partitions the global files dynamically.
	db, err := cluster.FormatDB("nr", seqs, "quickstart nr")
	if err != nil {
		log.Fatal(err)
	}

	// 4. Queries sampled from the database itself — the paper's own query
	//    methodology, guaranteeing strong alignments.
	queries, err := parblast.SampleQueries(seqs, parblast.QueryConfig{
		TargetBytes:  800,
		MeanLen:      150,
		MutationRate: 0.05,
		Seed:         1,
	})
	if err != nil {
		log.Fatal(err)
	}

	// 5. Search.
	res, err := cluster.Run(parblast.EnginePioBLAST, parblast.Search{
		DB:      db,
		Queries: queries,
		Output:  "results.out",
	})
	if err != nil {
		log.Fatal(err)
	}

	report, err := cluster.ReadOutput("results.out")
	if err != nil {
		log.Fatal(err)
	}

	fmt.Printf("searched %d queries against %q (%d sequences, %d residues)\n",
		len(queries), db.Title, db.NumSeqs, db.TotalResidues)
	fmt.Printf("virtual time: input=%.3fs search=%.3fs output=%.3fs total=%.3fs (search %.0f%%)\n",
		res.Phase.Input, res.Phase.Search, res.Phase.Output, res.Wall,
		res.SearchFraction()*100)
	fmt.Printf("report: %d bytes; first lines:\n\n", len(report))
	lines := strings.SplitN(string(report), "\n", 16)
	for _, l := range lines[:len(lines)-1] {
		fmt.Println("  ", l)
	}
}
