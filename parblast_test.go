package parblast_test

import (
	"bytes"
	"strings"
	"testing"

	"parblast"
)

func buildWorkload(t *testing.T) ([]*parblast.Sequence, []*parblast.Sequence) {
	t.Helper()
	seqs, err := parblast.SynthesizeDB(parblast.DBConfig{
		Kind: parblast.Protein, NumSeqs: 80, MeanLen: 150, Seed: 5, FamilySize: 8,
	})
	if err != nil {
		t.Fatal(err)
	}
	queries, err := parblast.SampleQueries(seqs, parblast.QueryConfig{
		TargetBytes: 400, MeanLen: 100, Seed: 6,
	})
	if err != nil {
		t.Fatal(err)
	}
	return seqs, queries
}

func TestPublicAPIEndToEnd(t *testing.T) {
	seqs, queries := buildWorkload(t)
	var outputs [][]byte
	for _, eng := range []parblast.Engine{
		parblast.EngineSequential, parblast.EngineMPIBlast, parblast.EnginePioBLAST,
	} {
		cluster, err := parblast.NewCluster(4, parblast.PlatformAltix)
		if err != nil {
			t.Fatal(err)
		}
		db, err := cluster.FormatDB("nr", seqs, "api nr")
		if err != nil {
			t.Fatal(err)
		}
		if eng == parblast.EngineMPIBlast {
			if err := cluster.PrepareFragments("nr", 3); err != nil {
				t.Fatal(err)
			}
		}
		res, err := cluster.Run(eng, parblast.Search{DB: db, Queries: queries, Output: "out"})
		if err != nil {
			t.Fatalf("%v: %v", eng, err)
		}
		out, err := cluster.ReadOutput("out")
		if err != nil {
			t.Fatal(err)
		}
		if res.OutputBytes != int64(len(out)) {
			t.Fatalf("%v: OutputBytes %d != file size %d", eng, res.OutputBytes, len(out))
		}
		outputs = append(outputs, out)
	}
	if !bytes.Equal(outputs[0], outputs[1]) || !bytes.Equal(outputs[0], outputs[2]) {
		t.Fatal("engines disagree through the public API")
	}
	if !strings.Contains(string(outputs[0]), "BLASTP") {
		t.Fatal("report missing banner")
	}
}

func TestPlatformAndEngineNames(t *testing.T) {
	if parblast.PlatformAltix.String() != "altix-xfs" ||
		parblast.PlatformBladeCluster.String() != "blade-nfs" ||
		parblast.PlatformIdeal.String() != "ideal" {
		t.Fatal("platform names wrong")
	}
	if parblast.EnginePioBLAST.String() != "pioBLAST" ||
		parblast.EngineMPIBlast.String() != "mpiBLAST" ||
		parblast.EngineSequential.String() != "sequential" {
		t.Fatal("engine names wrong")
	}
	if !strings.Contains(parblast.Platform(99).String(), "99") {
		t.Fatal("unknown platform should render its number")
	}
}

func TestClusterValidation(t *testing.T) {
	if _, err := parblast.NewCluster(0, parblast.PlatformAltix); err == nil {
		t.Fatal("zero-proc cluster accepted")
	}
	if _, err := parblast.NewCluster(2, parblast.Platform(42)); err == nil {
		t.Fatal("unknown platform accepted")
	}
	bad := parblast.DefaultCostModel()
	bad.NetBandwidth = 0
	if _, err := parblast.NewClusterWithCost(2, parblast.PlatformAltix, bad); err == nil {
		t.Fatal("invalid cost model accepted")
	}
}

func TestRunValidation(t *testing.T) {
	cluster, err := parblast.NewCluster(2, parblast.PlatformIdeal)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Run(parblast.EnginePioBLAST, parblast.Search{}); err == nil {
		t.Fatal("search without database accepted")
	}
	seqs, queries := buildWorkload(t)
	db, err := cluster.FormatDB("nr", seqs, "t")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Run(parblast.Engine(99), parblast.Search{DB: db, Queries: queries, Output: "o"}); err == nil {
		t.Fatal("unknown engine accepted")
	}
}

func TestDNADefaultsSelected(t *testing.T) {
	cluster, err := parblast.NewCluster(3, parblast.PlatformIdeal)
	if err != nil {
		t.Fatal(err)
	}
	seqs, err := parblast.SynthesizeDB(parblast.DBConfig{
		Kind: parblast.DNA, NumSeqs: 20, MeanLen: 600, Seed: 9,
	})
	if err != nil {
		t.Fatal(err)
	}
	queries, err := parblast.SampleQueries(seqs, parblast.QueryConfig{
		TargetBytes: 600, MeanLen: 300, Seed: 10,
	})
	if err != nil {
		t.Fatal(err)
	}
	db, err := cluster.FormatDB("nt", seqs, "dna db")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Run(parblast.EnginePioBLAST, parblast.Search{
		DB: db, Queries: queries, Output: "out",
	}); err != nil {
		t.Fatal(err)
	}
	out, err := cluster.ReadOutput("out")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "BLASTN") {
		t.Fatal("DNA database did not select blastn defaults")
	}
}

func TestMultiVolumeViaAPI(t *testing.T) {
	cluster, err := parblast.NewCluster(4, parblast.PlatformAltix)
	if err != nil {
		t.Fatal(err)
	}
	seqs, queries := buildWorkload(t)
	db, err := cluster.FormatDBVolumes("nr", seqs, "volumes", 3000)
	if err != nil {
		t.Fatal(err)
	}
	if len(db.Volumes) < 2 {
		t.Fatalf("expected multiple volumes, got %d", len(db.Volumes))
	}
	if _, err := cluster.Run(parblast.EnginePioBLAST, parblast.Search{
		DB: db, Queries: queries, Output: "out",
	}); err != nil {
		t.Fatal(err)
	}
}

func TestTraceThroughPublicAPI(t *testing.T) {
	seqs, queries := buildWorkload(t)
	cluster, err := parblast.NewCluster(3, parblast.PlatformAltix)
	if err != nil {
		t.Fatal(err)
	}
	collector := cluster.Trace()
	db, err := cluster.FormatDB("nr", seqs, "traced")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := cluster.Run(parblast.EnginePioBLAST, parblast.Search{
		DB: db, Queries: queries, Output: "out",
	}); err != nil {
		t.Fatal(err)
	}
	if len(collector.Ranks()) != 3 {
		t.Fatalf("traced %d ranks, want 3", len(collector.Ranks()))
	}
	var buf strings.Builder
	collector.Render(&buf, 60)
	if !strings.Contains(buf.String(), "rank   0") {
		t.Fatalf("timeline malformed:\n%s", buf.String())
	}
}

func TestTabularThroughPublicAPI(t *testing.T) {
	seqs, queries := buildWorkload(t)
	cluster, err := parblast.NewCluster(4, parblast.PlatformAltix)
	if err != nil {
		t.Fatal(err)
	}
	db, err := cluster.FormatDB("nr", seqs, "tab")
	if err != nil {
		t.Fatal(err)
	}
	opts := parblast.DefaultProteinOptions()
	opts.OutFormat = parblast.FormatTabular
	if _, err := cluster.Run(parblast.EnginePioBLAST, parblast.Search{
		DB: db, Queries: queries, Output: "out", Options: opts,
	}); err != nil {
		t.Fatal(err)
	}
	out, err := cluster.ReadOutput("out")
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(string(out), "# Fields:") {
		t.Fatal("tabular output missing through public API")
	}
}

func TestAdaptiveBatchingThroughPublicAPI(t *testing.T) {
	seqs, queries := buildWorkload(t)
	cluster, err := parblast.NewCluster(4, parblast.PlatformAltix)
	if err != nil {
		t.Fatal(err)
	}
	db, err := cluster.FormatDB("nr", seqs, "mem")
	if err != nil {
		t.Fatal(err)
	}
	res, err := cluster.Run(parblast.EnginePioBLAST, parblast.Search{
		DB: db, Queries: queries, Output: "out",
		Pio: parblast.PioOptions{MemoryBudgetBytes: 32 << 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.OutputBytes == 0 {
		t.Fatal("no output")
	}
}

func TestSearchThreadsInvarianceThroughPublicAPI(t *testing.T) {
	seqs, queries := buildWorkload(t)
	var outputs [][]byte
	for _, threads := range []int{1, 8} {
		cluster, err := parblast.NewCluster(4, parblast.PlatformAltix)
		if err != nil {
			t.Fatal(err)
		}
		db, err := cluster.FormatDB("nr", seqs, "api nr")
		if err != nil {
			t.Fatal(err)
		}
		opts := parblast.DefaultProteinOptions()
		opts.SearchThreads = threads
		if _, err := cluster.Run(parblast.EnginePioBLAST, parblast.Search{
			DB: db, Queries: queries, Output: "out", Options: opts,
		}); err != nil {
			t.Fatal(err)
		}
		out, err := cluster.ReadOutput("out")
		if err != nil {
			t.Fatal(err)
		}
		outputs = append(outputs, out)
	}
	if !bytes.Equal(outputs[0], outputs[1]) {
		t.Fatal("SearchThreads changed engine output bytes")
	}
}
