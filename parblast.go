// Package parblast is a from-scratch reproduction of "Efficient Data
// Access for Parallel BLAST" (Lin, Ma, Chandramohan, Geist, Samatova,
// IPDPS 2005) — the pioBLAST system — together with everything it needs to
// run: a BLAST search kernel, a formatdb-equivalent database formatter, a
// simulated MPI runtime with virtual-time accounting, an MPI-IO-style
// collective I/O layer, a cluster storage model, and the mpiBLAST baseline
// the paper compares against.
//
// The package is the public façade: it wires the internal substrates into
// three operations — build a cluster, format a database onto it, and run a
// search with either engine — and re-exports the types callers need.
//
// Quick start:
//
//	cluster, _ := parblast.NewCluster(8, parblast.PlatformAltix)
//	seqs, _ := parblast.SynthesizeDB(parblast.DBConfig{Kind: parblast.Protein, NumSeqs: 500, MeanLen: 300, Seed: 1})
//	db, _ := cluster.FormatDB("nr", seqs, "GenBank-like nr")
//	queries, _ := parblast.SampleQueries(seqs, parblast.QueryConfig{TargetBytes: 4096, MeanLen: 120, Seed: 2})
//	res, _ := cluster.Run(parblast.EnginePioBLAST, parblast.Search{DB: db, Queries: queries, Output: "results.out"})
//	fmt.Println(res.Phase, res.Wall)
package parblast

import (
	"fmt"

	"parblast/internal/blast"
	"parblast/internal/core"
	"parblast/internal/engine"
	"parblast/internal/formatdb"
	"parblast/internal/metrics"
	"parblast/internal/mpi"
	"parblast/internal/mpiblast"
	"parblast/internal/mpiio"
	"parblast/internal/seq"
	"parblast/internal/simtime"
	"parblast/internal/trace"
	"parblast/internal/vfs"
	"parblast/internal/workload"
)

// Re-exported building blocks. These are aliases, not copies: examples and
// tools work with the same types the internals use.
type (
	// Sequence is one biological sequence (ID, description, residues).
	Sequence = seq.Sequence
	// DBConfig configures synthetic database generation.
	DBConfig = workload.DBConfig
	// QueryConfig configures query sampling.
	QueryConfig = workload.QueryConfig
	// SearchOptions configures the BLAST kernel.
	SearchOptions = blast.Options
	// Result is a run summary: wall time, phase breakdown, output size.
	Result = engine.RunResult
	// Breakdown is a per-phase time split.
	Breakdown = simtime.Breakdown
	// CostModel converts work into virtual seconds.
	CostModel = simtime.CostModel
	// PioOptions selects pioBLAST variants (early pruning, independent
	// output) for ablations.
	PioOptions = core.Options
	// MpiOptions selects mpiBLAST-baseline variants (hierarchical tree
	// merge) for ablations.
	MpiOptions = mpiblast.Options
	// DB describes a formatted database.
	DB = formatdb.DB
	// TraceCollector records per-rank phase timelines (see Cluster.Trace).
	TraceCollector = trace.Collector
	// MetricsRegistry is the unified telemetry registry (see Cluster.Metrics).
	MetricsRegistry = metrics.Registry
	// MetricsSnapshot is a deterministic point-in-time metrics copy.
	MetricsSnapshot = metrics.Snapshot
	// Fault schedules one deterministic rank failure (see Search.Faults).
	Fault = mpi.Fault
	// FaultKind selects crash vs degrade.
	FaultKind = mpi.FaultKind
	// IOHints is the MPI-IO info object (read strategy, aggregator count,
	// collective buffer size, sieve gap) applied to every shared-file
	// handle of a pioBLAST run — see PioOptions.IOHints.
	IOHints = mpiio.Hints
	// IOTuner learns I/O hints online and persists them as a versioned
	// artifact — see PioOptions.IOTuner.
	IOTuner = mpiio.Tuner
	// IOHintsArtifact is the persisted learned-hints document.
	IOHintsArtifact = mpiio.HintsArtifact
	// ArrivalConfig configures the open-loop arrival generator for
	// serving-mode runs — see Cluster.Serve.
	ArrivalConfig = workload.ArrivalConfig
	// Batch is one arrival of the open-loop stream: a batch id, an arrival
	// time, and the queries it carries.
	Batch = workload.Batch
	// ServeStats is the admission accounting of a serving-mode run:
	// arrivals, admitted, shed, and per-batch clocks.
	ServeStats = engine.ServeStats
)

// Molecule kinds.
const (
	Protein = seq.Protein
	DNA     = seq.DNA
)

// Report formats.
const (
	FormatPairwise = blast.FormatPairwise
	FormatTabular  = blast.FormatTabular
)

// Batch-size distributions for the arrival generator.
const (
	// BatchSizeFixed: every batch holds exactly BatchMean queries.
	BatchSizeFixed = workload.BatchFixed
	// BatchSizeUniform: uniform in [1, 2·BatchMean-1], mean BatchMean.
	BatchSizeUniform = workload.BatchUniform
	// BatchSizeGeometric: geometric on {1,2,...}, mean BatchMean.
	BatchSizeGeometric = workload.BatchGeometric
)

// Fault kinds.
const (
	// FaultCrash fail-stops the victim at its first MPI operation at or
	// after the scheduled time.
	FaultCrash = mpi.FaultCrash
	// FaultDegrade slows the victim's compute by the Slow factor from the
	// scheduled time on.
	FaultDegrade = mpi.FaultDegrade
)

// Re-exported constructors.
var (
	// SynthesizeDB generates a deterministic synthetic database.
	SynthesizeDB = workload.SynthesizeDB
	// SampleQueries cuts query sets out of a database (the paper's query
	// methodology).
	SampleQueries = workload.SampleQueries
	// DefaultProteinOptions mirrors blastp defaults.
	DefaultProteinOptions = blast.DefaultProteinOptions
	// DefaultDNAOptions mirrors blastn defaults.
	DefaultDNAOptions = blast.DefaultDNAOptions
	// DefaultCostModel is a 2004-era cluster cost model.
	DefaultCostModel = simtime.DefaultCostModel
	// ParseIOStrategy parses a collective-read strategy name
	// ("two-phase", "list-io", "independent"; "" = two-phase).
	ParseIOStrategy = mpiio.ParseStrategy
	// NewIOTuner returns an empty I/O auto-tuner (every key explores).
	NewIOTuner = mpiio.NewTuner
	// LoadIOTuner seeds a tuner from a persisted learned-hints artifact.
	LoadIOTuner = mpiio.LoadTuner
	// ParseIOHintsArtifact parses and validates a learned-hints document.
	ParseIOHintsArtifact = mpiio.ParseHintsArtifact
	// Arrivals generates a seeded open-loop arrival stream over a query set
	// (Poisson, or bursty MMPP with Burst > 1) for Cluster.Serve.
	Arrivals = workload.Arrivals
)

// Platform selects a storage configuration modelled on the paper's two
// testbeds plus an idealized one.
type Platform int

const (
	// PlatformAltix models the ORNL SGI Altix: fast XFS shared storage,
	// no user-accessible node-local disks.
	PlatformAltix Platform = iota
	// PlatformBladeCluster models the NCSU IBM blade cluster: slow NFS
	// shared storage plus node-local disks.
	PlatformBladeCluster
	// PlatformIdeal has near-free storage; useful to isolate protocol
	// costs in ablations.
	PlatformIdeal
)

// String names the platform.
func (p Platform) String() string {
	switch p {
	case PlatformAltix:
		return "altix-xfs"
	case PlatformBladeCluster:
		return "blade-nfs"
	case PlatformIdeal:
		return "ideal"
	default:
		return fmt.Sprintf("Platform(%d)", int(p))
	}
}

// Engine selects the search implementation.
type Engine int

const (
	// EngineSequential is the single-process reference.
	EngineSequential Engine = iota
	// EngineMPIBlast is the baseline (pre-partitioned fragments,
	// serialized merging, master-only output).
	EngineMPIBlast
	// EnginePioBLAST is the paper's contribution.
	EnginePioBLAST
)

// String names the engine.
func (e Engine) String() string {
	switch e {
	case EngineSequential:
		return "sequential"
	case EngineMPIBlast:
		return "mpiBLAST"
	case EnginePioBLAST:
		return "pioBLAST"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// Cluster is a simulated parallel machine: ranks, storage, cost model.
type Cluster struct {
	procs   int
	nodes   []*vfs.Node
	cost    simtime.CostModel
	trace   *trace.Collector
	flows   bool
	metrics *metrics.Registry
}

// NewCluster builds a cluster of procs ranks on the given platform with
// the default cost model.
func NewCluster(procs int, platform Platform) (*Cluster, error) {
	return NewClusterWithCost(procs, platform, simtime.DefaultCostModel())
}

// NewClusterWithCost builds a cluster with an explicit cost model.
func NewClusterWithCost(procs int, platform Platform, cost CostModel) (*Cluster, error) {
	if procs < 1 {
		return nil, fmt.Errorf("parblast: cluster needs ≥1 process, got %d", procs)
	}
	if err := cost.Validate(); err != nil {
		return nil, err
	}
	var shared vfs.Profile
	var local *vfs.Profile
	switch platform {
	case PlatformAltix:
		shared = vfs.XFSLike()
	case PlatformBladeCluster:
		shared = vfs.NFSLike()
		l := vfs.LocalDisk()
		local = &l
	case PlatformIdeal:
		shared = vfs.RAMDisk()
	default:
		return nil, fmt.Errorf("parblast: unknown platform %v", platform)
	}
	nodes, err := vfs.Cluster(procs, shared, local)
	if err != nil {
		return nil, err
	}
	return &Cluster{procs: procs, nodes: nodes, cost: cost}, nil
}

// Procs returns the rank count.
func (c *Cluster) Procs() int { return c.procs }

// Trace enables phase-timeline collection for subsequent runs and returns
// the collector (render it with Render/Summary after a run).
func (c *Cluster) Trace() *TraceCollector {
	if c.trace == nil {
		c.trace = trace.NewCollector()
	}
	return c.trace
}

// TraceFlows enables causal message-flow recording on top of Trace: every
// delivered message and every collective contribution/release becomes a
// flow edge in the collector, linking sends to recvs across ranks. The
// Chrome exporter renders them as Perfetto flow arrows and the report
// layer's wait-for analyzer computes the exact critical path from them.
// Flow recording never advances virtual clocks: engine output is
// byte-identical with flows on or off. Returns the collector.
func (c *Cluster) TraceFlows() *TraceCollector {
	c.flows = true
	return c.Trace()
}

// Metrics enables unified telemetry for subsequent runs and returns the
// registry (snapshot it after a run). Every file system of the cluster is
// attached too, so vfs.* series appear alongside mpi/mpiio/blast/engine
// ones. Metrics never advance virtual clocks: enabling them cannot change
// any reported time.
func (c *Cluster) Metrics() *MetricsRegistry {
	if c.metrics == nil {
		c.metrics = metrics.NewRegistry()
		seen := make(map[*vfs.FS]bool)
		for _, n := range c.nodes {
			for _, fs := range []*vfs.FS{n.Shared, n.Local} {
				if fs == nil || seen[fs] {
					continue
				}
				seen[fs] = true
				fs.SetMetrics(c.metrics)
			}
		}
	}
	return c.metrics
}

// SharedFS exposes the shared file system (reading results, staging data).
func (c *Cluster) SharedFS() *vfs.FS { return c.nodes[0].Shared }

// FormatDB formats sequences into a named database on the shared file
// system (the formatdb step users run once per database).
func (c *Cluster) FormatDB(name string, seqs []*Sequence, title string) (*DB, error) {
	return formatdb.Format(c.nodes[0].Shared, name, seqs, formatdb.Config{
		Title: title, Kind: seqs[0].Alpha.Kind(),
	})
}

// FormatDBVolumes formats with a maximum volume size, producing a
// multi-volume database as formatdb does for very large inputs.
func (c *Cluster) FormatDBVolumes(name string, seqs []*Sequence, title string, volumeMaxResidues int64) (*DB, error) {
	return formatdb.Format(c.nodes[0].Shared, name, seqs, formatdb.Config{
		Title: title, Kind: seqs[0].Alpha.Kind(), VolumeMaxResidues: volumeMaxResidues,
	})
}

// OpenDB loads metadata of a database already present on the shared file
// system (e.g. imported from a directory that cmd/formatdb produced).
func (c *Cluster) OpenDB(name string) (*DB, error) {
	return formatdb.Open(c.nodes[0].Shared, name)
}

// PrepareFragments runs the mpiformatdb pre-partitioning step the baseline
// engine requires (pioBLAST never needs it).
func (c *Cluster) PrepareFragments(dbName string, n int) error {
	_, err := mpiblast.PrepareFragments(c.nodes[0].Shared, dbName, n)
	return err
}

// Search describes one search run.
type Search struct {
	// DB is the formatted database (from FormatDB).
	DB *DB
	// Queries is the query set.
	Queries []*Sequence
	// Output is the result-file path on the shared FS.
	Output string
	// Options configures the kernel; zero value selects defaults matching
	// the database's molecule kind.
	Options SearchOptions
	// Fragments overrides the partition granularity (0 = natural:
	// one fragment per worker).
	Fragments int
	// Pio selects pioBLAST variants; ignored by other engines.
	Pio PioOptions
	// Mpi selects mpiBLAST-baseline variants; ignored by other engines.
	Mpi MpiOptions
	// Faults schedules deterministic rank failures (crashes, degrades).
	// Scheduling any fault arms the engines' failure-recovery protocols;
	// fault firings land on the trace timeline as events.
	Faults []Fault
}

// job builds the engine job for a search, defaulting kernel options to the
// database's molecule kind.
func (c *Cluster) job(s Search) *engine.Job {
	opts := s.Options
	if opts.Matrix == nil {
		if s.DB.Kind == seq.DNA {
			opts = blast.DefaultDNAOptions()
		} else {
			opts = blast.DefaultProteinOptions()
		}
	}
	return &engine.Job{
		DBBase:     s.DB.Base,
		Queries:    s.Queries,
		Options:    opts,
		OutputPath: s.Output,
		Fragments:  s.Fragments,
	}
}

// mpiConfig wires the cluster's cost model, faults, metrics, and trace
// observers into one runtime config.
func (c *Cluster) mpiConfig(s Search) mpi.Config {
	cfg := mpi.Config{Cost: c.cost, Speeds: s.Pio.NodeSpeeds, Faults: s.Faults, Metrics: c.metrics}
	if c.trace != nil {
		cfg.Observer = c.trace.Observer
		tr := c.trace
		cfg.OnFault = func(rank int, kind mpi.FaultKind, at float64) {
			tr.RecordEventAttrs(rank, kind.String(), at,
				map[string]string{"kind": kind.String(), "rank": fmt.Sprintf("%d", rank)})
		}
		if c.flows {
			// Adapter, not an import: mpi reports plain FlowEvents and the
			// façade maps them onto trace.Flow — mirroring Observer/OnFault.
			// The callback may run under the mpi world lock (collective
			// edges); RecordFlow only takes the collector's own mutex.
			cfg.OnFlow = func(f mpi.FlowEvent) {
				tr.RecordFlow(trace.Flow{
					Kind: f.Kind, Op: f.Op, ID: f.ID, Batch: f.Batch,
					Src: f.Src, Dst: f.Dst, Bytes: f.Bytes,
					SendAt: f.SendAt, RecvAt: f.RecvAt,
				})
			}
		}
	}
	return cfg
}

// Run executes the search with the chosen engine and returns the timing
// summary. The result file is written to s.Output on the shared FS.
func (c *Cluster) Run(eng Engine, s Search) (Result, error) {
	if s.DB == nil {
		return Result{}, fmt.Errorf("parblast: search needs a database")
	}
	job := c.job(s)
	cfg := c.mpiConfig(s)
	switch eng {
	case EngineSequential:
		if err := engine.RunSequential(c.nodes[0].Shared, job); err != nil {
			return Result{}, err
		}
		var out int64
		if f, err := c.nodes[0].Shared.Open(s.Output); err == nil {
			out = f.Size()
		}
		return Result{OutputBytes: out}, nil
	case EngineMPIBlast:
		return mpiblast.RunOpts(c.nodes, c.procs, cfg, job, s.Mpi)
	case EnginePioBLAST:
		return core.RunConfig(c.nodes, c.procs, cfg, job, s.Pio)
	default:
		return Result{}, fmt.Errorf("parblast: unknown engine %v", eng)
	}
}

// Serve executes the search in streaming mode: the cluster warms up once
// (database loaded, partitions resident), then each arrival batch is
// admitted, searched, and appended to s.Output without reloading anything.
// A positive admitCap bounds the admission queue; batches arriving beyond
// it are deterministically shed (drop-newest). The concatenated output is
// byte-identical to a one-shot Run over the admitted queries in arrival
// order, and per-query latencies are measured from each batch's open-loop
// arrival time.
func (c *Cluster) Serve(eng Engine, s Search, batches []Batch, admitCap int) (Result, ServeStats, error) {
	if s.DB == nil {
		return Result{}, ServeStats{}, fmt.Errorf("parblast: search needs a database")
	}
	job := c.job(s)
	cfg := c.mpiConfig(s)
	switch eng {
	case EngineMPIBlast:
		return mpiblast.Serve(c.nodes, c.procs, cfg, job, s.Mpi, batches, admitCap)
	case EnginePioBLAST:
		return core.Serve(c.nodes, c.procs, cfg, job, s.Pio, batches, admitCap)
	default:
		return Result{}, ServeStats{}, fmt.Errorf("parblast: engine %v cannot serve (streaming needs a warm cluster)", eng)
	}
}

// ReadOutput returns the produced result file.
func (c *Cluster) ReadOutput(path string) ([]byte, error) {
	return c.nodes[0].Shared.ReadFile(path)
}
